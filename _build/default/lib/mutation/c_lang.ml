type constraint_ = Any | Range of int * int | One_of of int list

type fsig = { arity : int; args : constraint_ list }

type env = {
  vars : string list;
  consts : (string * int option) list;
  funcs : (string * fsig) list;
}

let empty_env = { vars = []; consts = []; funcs = [] }

(* {1 Lexer} *)

type token =
  | IDENT of string
  | NUM of string
  | CHARLIT of string
  | STRING of string
  | OP of string
  | PUNCT of string
  | HASH_DEFINE
  | HASH_OTHER
  | EOF

type loc_token = { tok : token; offset : int; len : int; line : int }

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let operators =
  [
    "="; "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">";
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<="; ">>=";
    "++"; "--"; "->"; ".";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_oct c = c >= '0' && c <= '7'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c

(* Validate a numeric literal the way a C lexer does. *)
let check_number s =
  let n = String.length s in
  if n = 0 then reject "empty number";
  if n > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
    let digits = String.sub s 2 (n - 2) in
    if digits = "" then reject "invalid hex constant %s" s;
    String.iter
      (fun c -> if not (is_hex c) then reject "invalid hex digit in %s" s)
      digits
  end
  else if n = 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    reject "hex constant with no digits: %s" s
  else if n > 1 && s.[0] = '0' then
    String.iter
      (fun c -> if not (is_oct c) then reject "invalid octal constant %s" s)
      s
  else
    String.iter
      (fun c -> if not (is_digit c) then reject "invalid constant %s" s)
      s

let value_of_number s =
  try Some (int_of_string s) with Failure _ -> (
    try Some (int_of_string ("0o" ^ String.sub s 1 (String.length s - 1)))
    with Failure _ | Invalid_argument _ -> None)

let tokenize_exn src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let toks = ref [] in
  let push tok offset len =
    toks := { tok; offset; len; line = !line } :: !toks
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos + 1 < n do
        if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          pos := !pos + 2;
          closed := true
        end
        else incr pos
      done;
      if not !closed then reject "unterminated comment"
    end
    else if c = '#' then begin
      let start = !pos in
      incr pos;
      while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t') do
        incr pos
      done;
      let ws = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      let word = String.sub src ws (!pos - ws) in
      if word = "define" then push HASH_DEFINE start (!pos - start)
      else begin
        (* Other directives are skipped to end of line. *)
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        push HASH_OTHER start (!pos - start)
      end
    end
    else if is_digit c then begin
      let start = !pos in
      while
        !pos < n
        && (is_ident src.[!pos] || src.[!pos] = '.')
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      check_number text;
      push (NUM text) start (!pos - start)
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      push (IDENT (String.sub src start (!pos - start))) start (!pos - start)
    end
    else if c = '"' then begin
      let start = !pos in
      incr pos;
      while !pos < n && src.[!pos] <> '"' do
        if src.[!pos] = '\\' then incr pos;
        incr pos
      done;
      if !pos >= n then reject "unterminated string";
      incr pos;
      push (STRING (String.sub src start (!pos - start))) start (!pos - start)
    end
    else if c = '\'' then begin
      let start = !pos in
      incr pos;
      while !pos < n && src.[!pos] <> '\'' do
        if src.[!pos] = '\\' then incr pos;
        incr pos
      done;
      if !pos >= n then reject "unterminated character constant";
      incr pos;
      push (CHARLIT (String.sub src start (!pos - start))) start (!pos - start)
    end
    else begin
      (* Operators and punctuation: longest match first. *)
      let try_str s' =
        let l = String.length s' in
        !pos + l <= n && String.sub src !pos l = s'
      in
      let three = [ "<<="; ">>=" ] in
      let two =
        [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*=";
          "/="; "%="; "&="; "|="; "^="; "++"; "--"; "->" ]
      in
      let matched =
        match List.find_opt try_str three with
        | Some s' -> Some s'
        | None -> List.find_opt try_str two
      in
      match matched with
      | Some s' ->
          push (OP s') !pos (String.length s');
          pos := !pos + String.length s'
      | None -> (
          let one = String.make 1 c in
          match c with
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '!' | '<'
          | '>' | '=' | '.' ->
              push (OP one) !pos 1;
              incr pos
          | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '?' | ':' ->
              push (PUNCT one) !pos 1;
              incr pos
          | _ -> reject "stray character %C" c)
    end
  done;
  push EOF n 0;
  List.rev !toks

let tokenize src =
  match tokenize_exn src with
  | toks -> Ok toks
  | exception Reject msg -> Error msg

(* {1 Parser / checker} *)

type scope = {
  mutable s_vars : string list;
  mutable s_consts : (string * int option) list;
  mutable s_funcs : (string * fsig) list;
}

type pstate = { toks : loc_token array; mutable cur : int; scope : scope }

let peek st = st.toks.(st.cur).tok
let peek2 st =
  if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1).tok else EOF

let advance st =
  if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let expect_punct st p =
  match peek st with
  | PUNCT q when q = p -> advance st
  | _ -> reject "expected '%s'" p

let type_keywords =
  [ "void"; "char"; "short"; "int"; "long"; "unsigned"; "signed"; "const";
    "static"; "volatile"; "register"; "extern"; "struct"; "union" ]

let stmt_keywords =
  [ "if"; "else"; "while"; "for"; "do"; "return"; "break"; "continue";
    "goto"; "switch"; "case"; "default"; "sizeof" ]

let is_type_start st =
  match peek st with
  | IDENT w -> List.mem w type_keywords
  | _ -> false

let known_var sc name = List.mem name sc.s_vars
let known_const sc name = List.mem_assoc name sc.s_consts
let known_func sc name = List.mem_assoc name sc.s_funcs

(* Expressions: a Pratt parser returning (is_lvalue, const_value). *)

type einfo = { lvalue : bool; cval : int option }

let rv = { lvalue = false; cval = None }

let prec_of = function
  | "*" | "/" | "%" -> 13
  | "+" | "-" -> 12
  | "<<" | ">>" -> 11
  | "<" | ">" | "<=" | ">=" -> 10
  | "==" | "!=" -> 9
  | "&" -> 8
  | "^" -> 7
  | "|" -> 6
  | "&&" -> 5
  | "||" -> 4
  | _ -> -1

let is_assign_op = function
  | "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<="
  | ">>=" ->
      true
  | _ -> false

let check_arg_constraint (c : constraint_) (arg : einfo) =
  match (c, arg.cval) with
  | Any, _ -> ()
  | _, None -> ()  (* only constants are checked at compile time *)
  | Range (lo, hi), Some v ->
      if v < lo || v > hi then
        reject "constant %d violates the stub's range [%d..%d]" v lo hi
  | One_of vs, Some v ->
      if not (List.mem v vs) then
        reject "constant %d is not an admissible value for this stub" v

let rec parse_expr st min_prec : einfo =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | OP op when is_assign_op op ->
        if min_prec > 2 then continue_ := false
        else begin
          if not !lhs.lvalue then reject "lvalue required for '%s'" op;
          advance st;
          let _rhs = parse_expr st 2 in
          lhs := rv
        end
    | OP op when prec_of op >= min_prec && prec_of op > 0 ->
        advance st;
        let _rhs = parse_expr st (prec_of op + 1) in
        lhs := rv
    | PUNCT "?" when min_prec <= 3 ->
        advance st;
        let _a = parse_expr st 0 in
        (match peek st with
        | PUNCT ":" -> advance st
        | _ -> reject "expected ':' in conditional expression");
        let _b = parse_expr st 3 in
        lhs := rv
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : einfo =
  match peek st with
  | OP ("!" | "~") ->
      advance st;
      let _ = parse_unary st in
      rv
  | OP ("-" | "+") ->
      advance st;
      let e = parse_unary st in
      { lvalue = false; cval = Option.map (fun v -> -v) e.cval }
  | OP "*" ->
      advance st;
      let _ = parse_unary st in
      { lvalue = true; cval = None }
  | OP "&" ->
      advance st;
      let e = parse_unary st in
      if not e.lvalue then reject "lvalue required for unary '&'";
      rv
  | OP ("++" | "--") ->
      advance st;
      let e = parse_unary st in
      if not e.lvalue then reject "lvalue required for increment";
      rv
  | IDENT "sizeof" ->
      advance st;
      (match peek st with
      | PUNCT "(" ->
          advance st;
          if is_type_start st then begin
            while
              match peek st with
              | IDENT w when List.mem w type_keywords -> true
              | OP "*" -> true
              | _ -> false
            do
              advance st
            done
          end
          else ignore (parse_expr st 0);
          expect_punct st ")"
      | _ -> ignore (parse_unary st));
      rv
  | _ -> parse_postfix st

and parse_postfix st : einfo =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PUNCT "[" ->
        advance st;
        let _ = parse_expr st 0 in
        expect_punct st "]";
        e := { lvalue = true; cval = None }
    | OP ("++" | "--") ->
        if not !e.lvalue then reject "lvalue required for increment";
        advance st;
        e := rv
    | OP ("." | "->") -> (
        advance st;
        match peek st with
        | IDENT _ ->
            advance st;
            e := { lvalue = true; cval = None }
        | _ -> reject "expected member name")
    | _ -> continue_ := false
  done;
  !e

and parse_primary st : einfo =
  match peek st with
  | NUM text ->
      advance st;
      { lvalue = false; cval = value_of_number text }
  | CHARLIT _ | STRING _ ->
      advance st;
      rv
  | PUNCT "(" ->
      advance st;
      let e = parse_expr st 0 in
      expect_punct st ")";
      e
  | IDENT name -> (
      advance st;
      match peek st with
      | PUNCT "(" ->
          (* Function call. *)
          let fsig =
            match List.assoc_opt name st.scope.s_funcs with
            | Some s -> s
            | None ->
                if known_var st.scope name || known_const st.scope name then
                  reject "called object '%s' is not a function" name
                else reject "implicit declaration of function '%s'" name
          in
          advance st;
          let args = ref [] in
          (match peek st with
          | PUNCT ")" -> advance st
          | _ ->
              let rec loop () =
                args := parse_expr st 2 :: !args;
                match peek st with
                | PUNCT "," ->
                    advance st;
                    loop ()
                | PUNCT ")" -> advance st
                | _ -> reject "expected ',' or ')' in call to %s" name
              in
              loop ());
          let args = List.rev !args in
          if List.length args <> fsig.arity then
            reject "%s expects %d argument(s), got %d" name fsig.arity
              (List.length args);
          List.iteri
            (fun i arg ->
              match List.nth_opt fsig.args i with
              | Some c -> check_arg_constraint c arg
              | None -> ())
            args;
          rv
      | _ ->
          if known_var st.scope name then { lvalue = true; cval = None }
          else if known_const st.scope name then
            { lvalue = false; cval = List.assoc name st.scope.s_consts }
          else if known_func st.scope name then rv
          else if List.mem name stmt_keywords || List.mem name type_keywords
          then reject "unexpected keyword '%s' in expression" name
          else reject "'%s' undeclared" name)
  | EOF -> reject "unexpected end of input"
  | t ->
      reject "unexpected token %s"
        (match t with
        | OP o -> "'" ^ o ^ "'"
        | PUNCT p -> "'" ^ p ^ "'"
        | _ -> "<token>")

(* {1 Declarations and statements} *)

let skip_type_words st =
  let saw = ref false in
  while
    match peek st with
    | IDENT w when List.mem w type_keywords ->
        advance st;
        (* struct/union tags *)
        (if w = "struct" || w = "union" then
           match peek st with IDENT _ -> advance st | _ -> ());
        saw := true;
        true
    | _ -> false
  do
    ()
  done;
  !saw

let parse_declarator st =
  while match peek st with OP "*" -> advance st; true | _ -> false do
    ()
  done;
  match peek st with
  | IDENT name when not (List.mem name type_keywords) ->
      advance st;
      (* array suffix *)
      (match peek st with
      | PUNCT "[" ->
          advance st;
          (match peek st with
          | NUM _ -> advance st
          | PUNCT "]" -> ()
          | _ -> ignore (parse_expr st 0));
          expect_punct st "]"
      | _ -> ());
      name
  | _ -> reject "expected declarator"

let rec parse_stmt st =
  match peek st with
  | PUNCT ";" -> advance st
  | PUNCT "{" -> parse_compound st
  | IDENT "if" ->
      advance st;
      expect_punct st "(";
      ignore (parse_expr st 0);
      expect_punct st ")";
      parse_stmt st;
      (match peek st with
      | IDENT "else" ->
          advance st;
          parse_stmt st
      | _ -> ())
  | IDENT "while" ->
      advance st;
      expect_punct st "(";
      ignore (parse_expr st 0);
      expect_punct st ")";
      parse_stmt st
  | IDENT "do" ->
      advance st;
      parse_stmt st;
      (match peek st with
      | IDENT "while" -> advance st
      | _ -> reject "expected 'while' after 'do'");
      expect_punct st "(";
      ignore (parse_expr st 0);
      expect_punct st ")";
      expect_punct st ";"
  | IDENT "for" ->
      advance st;
      expect_punct st "(";
      (match peek st with
      | PUNCT ";" -> advance st
      | _ ->
          if is_type_start st then parse_local_decl st
          else begin
            ignore (parse_expr st 0);
            expect_punct st ";"
          end);
      (match peek st with
      | PUNCT ";" -> advance st
      | _ ->
          ignore (parse_expr st 0);
          expect_punct st ";");
      (match peek st with
      | PUNCT ")" -> advance st
      | _ ->
          ignore (parse_expr st 0);
          expect_punct st ")");
      parse_stmt st
  | IDENT "return" ->
      advance st;
      (match peek st with
      | PUNCT ";" -> advance st
      | _ ->
          ignore (parse_expr st 0);
          expect_punct st ";")
  | IDENT ("break" | "continue") ->
      advance st;
      expect_punct st ";"
  | IDENT w when List.mem w type_keywords -> parse_local_decl st
  | _ ->
      ignore (parse_expr st 0);
      expect_punct st ";"

and parse_local_decl st =
  ignore (skip_type_words st);
  let rec one () =
    let name = parse_declarator st in
    st.scope.s_vars <- name :: st.scope.s_vars;
    (match peek st with
    | OP "=" ->
        advance st;
        ignore (parse_expr st 2)
    | _ -> ());
    match peek st with
    | PUNCT "," ->
        advance st;
        one ()
    | PUNCT ";" -> advance st
    | _ -> reject "expected ',' or ';' in declaration"
  in
  one ()

and parse_compound st =
  expect_punct st "{";
  let saved = st.scope.s_vars in
  let rec go () =
    match peek st with
    | PUNCT "}" -> advance st
    | EOF -> reject "unexpected end of input in block"
    | _ ->
        parse_stmt st;
        go ()
  in
  go ();
  st.scope.s_vars <- saved

(* {1 Top level} *)

let parse_define st =
  let directive_line = st.toks.(st.cur).line in
  advance st;
  (* '#define' *)
  match peek st with
  | IDENT name when st.toks.(st.cur).line = directive_line ->
      advance st;
      (* Object-like macro: the body is whatever remains on the line.
         It is parsed as a constant expression in the current scope, so
         a mutated identifier inside a macro body is flagged just as
         the compiler would flag it at the macro's first use. *)
      let body = ref [] in
      while
        peek st <> EOF && st.toks.(st.cur).line = directive_line
      do
        body := st.toks.(st.cur) :: !body;
        advance st
      done;
      let body = List.rev !body in
      let value =
        match body with
        | [] -> None
        | _ ->
            let eof = { tok = EOF; offset = 0; len = 0; line = 0 } in
            let sub =
              { toks = Array.of_list (body @ [ eof ]); cur = 0;
                scope = st.scope }
            in
            let v = parse_expr sub 0 in
            if peek sub <> EOF then reject "trailing tokens in macro %s" name;
            v.cval
      in
      st.scope.s_consts <- (name, value) :: st.scope.s_consts
  | _ -> reject "macro name missing after #define"

let parse_toplevel st =
  match peek st with
  | HASH_DEFINE -> parse_define st
  | HASH_OTHER -> advance st
  | IDENT w when List.mem w type_keywords ->
      ignore (skip_type_words st);
      let name = parse_declarator st in
      (match peek st with
      | PUNCT "(" ->
          (* Function definition. *)
          advance st;
          let params = ref [] in
          (match peek st with
          | PUNCT ")" -> advance st
          | IDENT "void" when peek2 st = PUNCT ")" ->
              advance st;
              advance st
          | _ ->
              let rec loop () =
                ignore (skip_type_words st);
                let p = parse_declarator st in
                params := p :: !params;
                match peek st with
                | PUNCT "," ->
                    advance st;
                    loop ()
                | PUNCT ")" -> advance st
                | _ -> reject "expected ',' or ')' in parameter list"
              in
              loop ());
          st.scope.s_funcs <-
            (name, { arity = List.length !params; args = [] })
            :: st.scope.s_funcs;
          let saved = st.scope.s_vars in
          st.scope.s_vars <- !params @ st.scope.s_vars;
          (match peek st with
          | PUNCT "{" -> parse_compound st
          | PUNCT ";" -> advance st
          | _ -> reject "expected function body or ';'");
          st.scope.s_vars <- saved
      | _ ->
          (* Global variable(s). *)
          st.scope.s_vars <- name :: st.scope.s_vars;
          (match peek st with
          | OP "=" ->
              advance st;
              ignore (parse_expr st 2)
          | _ -> ());
          let rec more () =
            match peek st with
            | PUNCT "," ->
                advance st;
                let n = parse_declarator st in
                st.scope.s_vars <- n :: st.scope.s_vars;
                (match peek st with
                | OP "=" ->
                    advance st;
                    ignore (parse_expr st 2)
                | _ -> ());
                more ()
            | PUNCT ";" -> advance st
            | _ -> reject "expected ',' or ';'"
          in
          more ())
  | EOF -> ()
  | _ -> reject "expected a declaration or directive at top level"

let check ~env src =
  match tokenize_exn src with
  | exception Reject msg -> Error msg
  | toks -> (
      let scope =
        { s_vars = env.vars; s_consts = env.consts; s_funcs = env.funcs }
      in
      let st = { toks = Array.of_list toks; cur = 0; scope } in
      match
        while peek st <> EOF do
          parse_toplevel st
        done
      with
      | () -> Ok ()
      | exception Reject msg -> Error msg)
