lib/devil_check/check.ml: Array Devil_bits Devil_ir Devil_syntax List Option Printf String
