lib/devil_check/check.mli: Devil_ir Devil_syntax
