module Diagnostics = Devil_syntax.Diagnostics
module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Resolve = Devil_ir.Resolve
module Mask = Devil_bits.Mask
module Bitpat = Devil_bits.Bitpat

type ctx = { diags : Diagnostics.t; device : Ir.device }

let err ctx loc fmt = Diagnostics.error ctx.diags loc fmt
let warn ctx loc fmt = Diagnostics.warning ctx.diags loc fmt

(* {1 Strong typing: enumerated types} *)

let check_enum_cases ctx ~loc ~what (cases : Dtype.enum_case list) =
  (match cases with
  | [] -> err ctx loc "%s: enumerated type has no case" what
  | first :: rest ->
      let w = Bitpat.width first.pattern in
      List.iter
        (fun (c : Dtype.enum_case) ->
          if Bitpat.width c.pattern <> w then
            err ctx loc
              "%s: case %s has a %d-bit pattern; other cases use %d bits" what
              c.case_name (Bitpat.width c.pattern) w)
        rest);
  (* No double definition: symbols and exact duplicate patterns. *)
  let rec dup_names = function
    | [] -> ()
    | (c : Dtype.enum_case) :: rest ->
        if List.exists (fun c' -> String.equal c'.Dtype.case_name c.case_name) rest
        then err ctx loc "%s: enumeration symbol %s is defined twice" what
            c.case_name;
        dup_names rest
  in
  dup_names cases;
  let rec dup_patterns = function
    | [] -> ()
    | (c : Dtype.enum_case) :: rest ->
        List.iter
          (fun (c' : Dtype.enum_case) ->
            if
              Bitpat.equal c.pattern c'.pattern
              && (Dtype.writable_case c.dir = Dtype.writable_case c'.dir
                 || Dtype.readable_case c.dir = Dtype.readable_case c'.dir)
            then
              err ctx loc "%s: cases %s and %s share the bit pattern %s" what
                c.case_name c'.case_name
                (Bitpat.to_string c.pattern))
          rest;
        dup_patterns rest
  in
  dup_patterns cases;
  (* Writable cases need an exact pattern: they must denote one value. *)
  List.iter
    (fun (c : Dtype.enum_case) ->
      if Dtype.writable_case c.dir && not (Bitpat.is_exact c.pattern) then
        err ctx loc
          "%s: writable case %s has a wildcard pattern and denotes no single \
           value"
          what c.case_name)
    cases

(* Readable enum cases must be exhaustive over the variable's width
   ("Read elements of a type mapping must be exhaustive"). *)
let check_enum_read_exhaustive ctx (v : Ir.var) cases =
  let w = Ir.var_width v in
  if w <= 16 then
    let readable = List.filter (fun c -> Dtype.readable_case c.Dtype.dir) cases in
    if readable <> [] then
      let missing = ref None in
      (let n = 1 lsl w in
       let i = ref 0 in
       while !missing = None && !i < n do
         if
           not
             (List.exists (fun c -> Bitpat.matches c.Dtype.pattern !i) readable)
         then missing := Some !i;
         incr i
       done);
      match !missing with
      | Some raw ->
          err ctx v.v_loc
            "variable %s: read mapping is not exhaustive (value %d matches no \
             readable case)"
            v.v_name raw
      | None -> ()

(* {1 Strong typing: variables} *)

let var_readable ctx (v : Ir.var) =
  v.Ir.v_chunks <> []
  && List.for_all
       (fun (c : Ir.chunk) ->
         match Ir.find_reg ctx.device c.c_reg with
         | Some r -> Ir.reg_readable r
         | None -> false)
       v.v_chunks

let var_writable ctx (v : Ir.var) =
  v.Ir.v_chunks <> []
  && List.for_all
       (fun (c : Ir.chunk) ->
         match Ir.find_reg ctx.device c.c_reg with
         | Some r -> Ir.reg_writable r
         | None -> false)
       v.v_chunks

let check_var_type ctx (v : Ir.var) =
  let width = Ir.var_width v in
  (match v.v_type with
  | Dtype.Bool ->
      if v.v_chunks <> [] && width <> 1 then
        err ctx v.v_loc "variable %s: bool requires 1 bit, found %d" v.v_name
          width
  | Dtype.Int { bits; signed } ->
      if v.v_chunks <> [] && bits <> width then
        err ctx v.v_loc
          "variable %s: type %sint(%d) does not match its %d defined bit(s)"
          v.v_name
          (if signed then "signed " else "")
          bits width
  | Dtype.Int_set { bits; _ } ->
      if v.v_chunks <> [] && bits > width then
        err ctx v.v_loc
          "variable %s: range type needs %d bits but only %d are defined"
          v.v_name bits width
  | Dtype.Enum cases ->
      check_enum_cases ctx ~loc:v.v_loc
        ~what:(Printf.sprintf "variable %s" v.v_name)
        cases;
      (match cases with
      | c :: _ when v.v_chunks <> [] && Bitpat.width c.Dtype.pattern <> width
        ->
          err ctx v.v_loc
            "variable %s: enumeration patterns are %d bits wide but the \
             variable has %d bit(s)"
            v.v_name
            (Bitpat.width c.Dtype.pattern)
            width
      | _ -> ());
      if var_readable ctx v then check_enum_read_exhaustive ctx v cases;
      (* Usage constraints: a read mapping on an unreadable variable is
         dead, and symmetrically for writes. *)
      if
        v.v_chunks <> []
        && List.exists (fun c -> Dtype.readable_case c.Dtype.dir) cases
        && not (var_readable ctx v)
      then
        err ctx v.v_loc
          "variable %s: type has read mappings but the variable is not \
           readable"
          v.v_name;
      if
        v.v_chunks <> []
        && List.exists (fun c -> Dtype.writable_case c.Dtype.dir) cases
        && not (var_writable ctx v)
      then
        err ctx v.v_loc
          "variable %s: type has write mappings but the variable is not \
           writable"
          v.v_name);
  (* Chunk bits must fall on covered mask positions. *)
  List.iter
    (fun (c : Ir.chunk) ->
      match Ir.find_reg ctx.device c.c_reg with
      | None -> ()
      | Some r ->
          List.iter
            (fun (hi, lo) ->
              for bit = lo to hi do
                if bit >= 0 && bit < Mask.width r.r_mask then
                  match Mask.bit r.r_mask bit with
                  | Mask.Covered -> ()
                  | Mask.Forced _ ->
                      err ctx v.v_loc
                        "variable %s uses bit %d of %s, which the mask forces \
                         to a fixed value"
                        v.v_name bit r.r_name
                  | Mask.Irrelevant ->
                      err ctx v.v_loc
                        "variable %s uses bit %d of %s, which the mask marks \
                         irrelevant"
                        v.v_name bit r.r_name
              done)
            c.c_ranges)
    v.v_chunks

(* {1 Strong typing: actions} *)

let check_operand_against ctx ~loc ~who ~target_ty (o : Ir.operand) =
  match o with
  | Ir.O_any -> ()
  | Ir.O_int n -> (
      match Dtype.validate_write target_ty (Value.Int n) with
      | Ok () -> ()
      | Error msg -> err ctx loc "%s: %s" who msg)
  | Ir.O_bool b -> (
      match Dtype.validate_write target_ty (Value.Bool b) with
      | Ok () -> ()
      | Error msg -> err ctx loc "%s: %s" who msg)
  | Ir.O_enum name -> (
      match Dtype.validate_write target_ty (Value.Enum name) with
      | Ok () -> ()
      | Error msg -> err ctx loc "%s: %s" who msg)
  | Ir.O_var src -> (
      match Ir.find_var ctx.device src with
      | None -> err ctx loc "%s: unknown source variable %s" who src
      | Some sv ->
          if Dtype.width sv.v_type <> Dtype.width target_ty then
            err ctx loc
              "%s: source variable %s (%d bits) does not fit the target (%d \
               bits)"
              who src (Dtype.width sv.v_type) (Dtype.width target_ty))
  | Ir.O_param p ->
      (* Template parameters range over integers; acceptable for any
         integer-kind target. Their ranges were validated per template. *)
      (match target_ty with
      | Dtype.Int _ | Dtype.Int_set _ -> ()
      | Dtype.Bool | Dtype.Enum _ ->
          err ctx loc "%s: parameter %s cannot be assigned to this target" who
            p)

let check_action ctx ~loc ~who (a : Ir.action) =
  List.iter
    (fun (assignment : Ir.assignment) ->
      match assignment with
      | Ir.Set_var { target; value } -> (
          match Ir.find_var ctx.device target with
          | None -> err ctx loc "%s: unknown variable %s" who target
          | Some tv ->
              check_operand_against ctx ~loc ~who ~target_ty:tv.v_type value)
      | Ir.Set_struct { target; fields } -> (
          match Ir.find_struct ctx.device target with
          | None -> err ctx loc "%s: unknown structure %s" who target
          | Some s ->
              List.iter
                (fun (fname, value) ->
                  if not (List.mem fname s.s_fields) then
                    err ctx loc "%s: %s is not a field of structure %s" who
                      fname target
                  else
                    match Ir.find_var ctx.device fname with
                    | None -> ()
                    | Some fv ->
                        check_operand_against ctx ~loc ~who
                          ~target_ty:fv.v_type value)
                fields;
              List.iter
                (fun fname ->
                  if
                    not
                      (List.exists
                         (fun (f, _) -> String.equal f fname)
                         fields)
                  then
                    err ctx loc
                      "%s: structure assignment to %s leaves field %s \
                       undefined"
                      who target fname)
                s.s_fields))
    a

let check_all_actions ctx =
  List.iter
    (fun (r : Ir.reg) ->
      let who = Printf.sprintf "register %s" r.r_name in
      check_action ctx ~loc:r.r_loc ~who r.r_pre;
      check_action ctx ~loc:r.r_loc ~who r.r_post;
      check_action ctx ~loc:r.r_loc ~who r.r_set)
    ctx.device.d_regs;
  List.iter
    (fun (t : Ir.template) ->
      let who = Printf.sprintf "register template %s" t.t_name in
      check_action ctx ~loc:t.t_loc ~who t.t_pre;
      check_action ctx ~loc:t.t_loc ~who t.t_post;
      check_action ctx ~loc:t.t_loc ~who t.t_set)
    ctx.device.d_templates;
  List.iter
    (fun (v : Ir.var) ->
      let who = Printf.sprintf "variable %s" v.v_name in
      check_action ctx ~loc:v.v_loc ~who v.v_pre;
      check_action ctx ~loc:v.v_loc ~who v.v_post;
      check_action ctx ~loc:v.v_loc ~who v.v_set)
    ctx.device.d_vars

(* {1 Strong typing: registers vs ports} *)

let check_reg_ports ctx =
  let check_point (r : Ir.reg) (lp : Ir.located_port) =
    match Ir.find_port ctx.device lp.lp_port with
    | None -> err ctx r.r_loc "register %s: unknown port %s" r.r_name lp.lp_port
    | Some p ->
        if r.r_size <> p.p_width then
          err ctx r.r_loc
            "register %s is %d bits wide but port %s transfers %d bits"
            r.r_name r.r_size p.p_name p.p_width
  in
  List.iter
    (fun (r : Ir.reg) ->
      (match (r.r_read, r.r_write) with
      | None, None ->
          err ctx r.r_loc "register %s is bound to no port" r.r_name
      | _ -> ());
      Option.iter (check_point r) r.r_read;
      Option.iter (check_point r) r.r_write)
    ctx.device.d_regs

(* {1 Trigger sharing (§2.1)} *)

let check_trigger_sharing ctx =
  List.iter
    (fun (r : Ir.reg) ->
      let vars = Ir.vars_of_reg ctx.device r.r_name in
      (* A write to any variable of the register rewrites the whole
         register, re-firing the side effects of its siblings; a shared
         write-trigger variable therefore needs a neutral value (an
         [except] exemption, or a [for] exemption whose complement is
         neutral). *)
      if List.length vars > 1 then
        List.iter
          (fun (v : Ir.var) ->
            match v.v_behaviour.b_trigger with
            | Some { tr_write = true; tr_exempt = None; _ } ->
                err ctx v.v_loc
                  "variable %s has a write trigger and shares register %s \
                   with other variables, but provides no neutral value"
                  v.v_name r.r_name
            | Some _ | None -> ())
          vars)
    ctx.device.d_regs

(* {1 No omission} *)

let reg_points (r : Ir.reg) =
  List.filter_map
    (fun x -> x)
    [
      Option.map (fun lp -> (lp, Ir.Read)) r.r_read;
      Option.map (fun lp -> (lp, Ir.Write)) r.r_write;
    ]

let template_points (t : Ir.template) =
  List.filter_map
    (fun x -> x)
    [
      Option.map (fun lp -> (lp, Ir.Read)) t.t_read;
      Option.map (fun lp -> (lp, Ir.Write)) t.t_write;
    ]

let check_no_omission ctx =
  let d = ctx.device in
  (* Ports and port offsets. *)
  let used_offsets =
    List.concat_map (fun r -> List.map fst (reg_points r)) d.d_regs
    @ List.concat_map (fun t -> List.map fst (template_points t)) d.d_templates
  in
  List.iter
    (fun (p : Ir.port) ->
      let uses =
        List.filter (fun (lp : Ir.located_port) -> String.equal lp.lp_port p.p_name) used_offsets
      in
      if uses = [] then err ctx p.p_loc "port %s is never used" p.p_name
      else
        List.iter
          (fun off ->
            if
              not
                (List.exists
                   (fun (lp : Ir.located_port) -> lp.lp_offset = off)
                   uses)
            then
              err ctx p.p_loc "offset %d of port %s is never used" off
                p.p_name)
          p.p_offsets)
    d.d_ports;
  (* Registers: every register must carry a variable bit or take part in
     a serialization order. *)
  let serial_regs =
    List.concat_map
      (fun (v : Ir.var) ->
        match v.v_serial with
        | Some items -> List.map (fun (i : Ir.serial_item) -> i.si_reg) items
        | None -> [])
      d.d_vars
    @ List.concat_map
        (fun (s : Ir.strct) ->
          match s.s_serial with
          | Some items -> List.map (fun (i : Ir.serial_item) -> i.si_reg) items
          | None -> [])
        d.d_structs
  in
  List.iter
    (fun (r : Ir.reg) ->
      let used =
        Ir.vars_of_reg d r.r_name <> [] || List.mem r.r_name serial_regs
      in
      if not used then
        err ctx r.r_loc "register %s defines no variable" r.r_name)
    d.d_regs;
  (* Register bits: every '.' bit covered exactly once (the coverage
     upper bound is the "no overlap" rule, reported here jointly). *)
  List.iter
    (fun (r : Ir.reg) ->
      let counts = Array.make r.r_size 0 in
      List.iter
        (fun (v : Ir.var) ->
          List.iter
            (fun (c : Ir.chunk) ->
              if String.equal c.c_reg r.r_name then
                List.iter
                  (fun (hi, lo) ->
                    for bit = max 0 lo to min (r.r_size - 1) hi do
                      counts.(bit) <- counts.(bit) + 1
                    done)
                  c.c_ranges)
            v.v_chunks)
        d.d_vars;
      for bit = 0 to r.r_size - 1 do
        match Mask.bit r.r_mask bit with
        | Mask.Covered ->
            if counts.(bit) = 0 then
              err ctx r.r_loc "bit %d of register %s is never used" bit
                r.r_name
            else if counts.(bit) > 1 then
              err ctx r.r_loc
                "bit %d of register %s is used by two different variables" bit
                r.r_name
        | Mask.Forced _ | Mask.Irrelevant ->
            if counts.(bit) > 1 then
              err ctx r.r_loc
                "bit %d of register %s is used by two different variables" bit
                r.r_name
      done)
    d.d_regs;
  (* Configuration parameters must be tested by a condition somewhere:
     an unused parameter is an omission like an unused port. A
     conditional-free elaboration cannot see which branch mentioned the
     parameter, so the test is against serialization conditions (the
     only place a constant can still appear in the IR); spec-level
     conditionals consumed during elaboration also count, which the
     elaborator guarantees by erroring on unknown parameters. *)
  List.iter
    (fun (name, _) ->
      let tested_in items =
        List.exists
          (fun (i : Ir.serial_item) ->
            match i.si_cond with
            | Some c -> String.equal c.sc_var name
            | None -> false)
          items
      in
      let used =
        List.exists
          (fun (v : Ir.var) ->
            match v.v_serial with Some items -> tested_in items | None -> false)
          d.d_vars
        || List.exists
             (fun (s : Ir.strct) ->
               match s.s_serial with
               | Some items -> tested_in items
               | None -> false)
             d.d_structs
      in
      if not used then
        warn ctx d.d_loc
          "configuration parameter %s is not used by this elaboration" name)
    d.d_consts;
  (* Private variables should be referenced somewhere. *)
  let referenced_in_action (a : Ir.action) name =
    List.exists
      (fun (assignment : Ir.assignment) ->
        match assignment with
        | Ir.Set_var { target; value } ->
            String.equal target name
            || (match value with Ir.O_var v -> String.equal v name | _ -> false)
        | Ir.Set_struct { target; fields } ->
            String.equal target name
            || List.exists
                 (fun (f, value) ->
                   String.equal f name
                   ||
                   match value with
                   | Ir.O_var v -> String.equal v name
                   | _ -> false)
                 fields)
      a
  in
  List.iter
    (fun (v : Ir.var) ->
      if v.v_private && v.v_chunks <> [] then begin
        let used =
          List.exists
            (fun (r : Ir.reg) ->
              referenced_in_action r.r_pre v.v_name
              || referenced_in_action r.r_post v.v_name
              || referenced_in_action r.r_set v.v_name)
            d.d_regs
          || List.exists
               (fun (t : Ir.template) ->
                 referenced_in_action t.t_pre v.v_name
                 || referenced_in_action t.t_post v.v_name
                 || referenced_in_action t.t_set v.v_name)
               d.d_templates
          || List.exists
               (fun (v' : Ir.var) ->
                 (not (String.equal v'.v_name v.v_name))
                 && (referenced_in_action v'.v_pre v.v_name
                    || referenced_in_action v'.v_post v.v_name
                    || referenced_in_action v'.v_set v.v_name))
               d.d_vars
        in
        if not used then
          warn ctx v.v_loc "private variable %s is never referenced" v.v_name
      end)
    d.d_vars

(* {1 No overlapping definitions: access points} *)

(* Two registers on the same access point are compatible when their
   pre-actions assign provably different constants to a common variable,
   when their masks cover disjoint bit sets, or when a serialization
   order sequences them. *)

let constant_assignments (a : Ir.action) =
  List.filter_map
    (fun (assignment : Ir.assignment) ->
      match assignment with
      | Ir.Set_var { target; value } -> (
          match value with
          | Ir.O_int n -> Some (target, Value.Int n)
          | Ir.O_bool b -> Some (target, Value.Bool b)
          | Ir.O_enum e -> Some (target, Value.Enum e)
          | Ir.O_any | Ir.O_var _ | Ir.O_param _ -> None)
      | Ir.Set_struct _ -> None)
    a

let disjoint_pre (a : Ir.action) (b : Ir.action) =
  let ca = constant_assignments a and cb = constant_assignments b in
  List.exists
    (fun (t, va) ->
      List.exists
        (fun (t', vb) -> String.equal t t' && not (Value.equal va vb))
        cb)
    ca

let mask_covered_set (m : Mask.t) =
  List.fold_left (fun acc bit -> acc lor (1 lsl bit)) 0 (Mask.covered_bits m)

let disjoint_masks (a : Mask.t) (b : Mask.t) =
  mask_covered_set a land mask_covered_set b = 0

(* Two masks also separate registers when some bit position is forced
   to different values: the hardware decodes the write by that bit
   (e.g. the 8259A tells ICW1 from OCW2/OCW3 by bit 4). *)
let distinguishing_masks (a : Mask.t) (b : Mask.t) =
  Mask.width a = Mask.width b
  && (let found = ref false in
      for i = 0 to Mask.width a - 1 do
        match (Mask.bit a i, Mask.bit b i) with
        | Mask.Forced x, Mask.Forced y when x <> y -> found := true
        | (Mask.Forced _ | Mask.Covered | Mask.Irrelevant), _ -> ()
      done;
      !found)

(* A pre-action that writes a whole structure drives an addressing
   automaton (e.g. the CS4236B extended-register access sequence); the
   registers it guards are separated from their peers by device state
   rather than by a comparable constant. *)
let automaton_pre (a : Ir.action) =
  List.exists
    (function Ir.Set_struct _ -> true | Ir.Set_var _ -> false)
    a

let serialized_together ctx r1 r2 =
  let lists =
    List.filter_map (fun (v : Ir.var) -> v.v_serial) ctx.device.d_vars
    @ List.filter_map (fun (s : Ir.strct) -> s.s_serial) ctx.device.d_structs
  in
  List.exists
    (fun items ->
      let regs = List.map (fun (i : Ir.serial_item) -> i.si_reg) items in
      List.mem r1 regs && List.mem r2 regs)
    lists

let same_template_family (r1 : Ir.reg) (r2 : Ir.reg) =
  match (r1.r_from_template, r2.r_from_template) with
  | Some (t1, _), Some (t2, _) -> String.equal t1 t2
  | _ -> false

let check_no_overlap_points ctx =
  let d = ctx.device in
  let points =
    List.concat_map
      (fun (r : Ir.reg) ->
        List.map (fun (lp, dir) -> (lp, dir, r)) (reg_points r))
      d.d_regs
  in
  let rec pairwise = function
    | [] -> ()
    | ((lp1 : Ir.located_port), dir1, (r1 : Ir.reg)) :: rest ->
        List.iter
          (fun ((lp2 : Ir.located_port), dir2, (r2 : Ir.reg)) ->
            if
              String.equal lp1.lp_port lp2.lp_port
              && lp1.lp_offset = lp2.lp_offset && dir1 = dir2
              && not (String.equal r1.r_name r2.r_name)
            then
              let compatible =
                disjoint_pre r1.r_pre r2.r_pre
                || disjoint_masks r1.r_mask r2.r_mask
                || distinguishing_masks r1.r_mask r2.r_mask
                || serialized_together ctx r1.r_name r2.r_name
                || same_template_family r1 r2
                || automaton_pre r1.r_pre <> automaton_pre r2.r_pre
              in
              if not compatible then
                err ctx r2.r_loc
                  "registers %s and %s overlap on %s@%d without disjoint \
                   pre-actions, masks, or a serialization order"
                  r1.r_name r2.r_name lp1.lp_port lp1.lp_offset)
          rest;
        pairwise rest
  in
  pairwise points;
  (* A concrete register also must not collide with a template covering
     the same point, unless it is an instance of that template or is
     distinguished by pre-actions. *)
  List.iter
    (fun (t : Ir.template) ->
      List.iter
        (fun ((lpt : Ir.located_port), dirt) ->
          List.iter
            (fun (r : Ir.reg) ->
              let from_t =
                match r.r_from_template with
                | Some (name, _) -> String.equal name t.t_name
                | None -> false
              in
              if not from_t then
                List.iter
                  (fun ((lpr : Ir.located_port), dirr) ->
                    if
                      String.equal lpt.lp_port lpr.lp_port
                      && lpt.lp_offset = lpr.lp_offset && dirt = dirr
                      && not (disjoint_pre t.t_pre r.r_pre)
                      && not (disjoint_masks t.t_mask r.r_mask)
                      && not (distinguishing_masks t.t_mask r.r_mask)
                      && automaton_pre t.t_pre = automaton_pre r.r_pre
                    then
                      err ctx r.r_loc
                        "register %s overlaps the parameterized register %s \
                         on %s@%d"
                        r.r_name t.t_name lpt.lp_port lpt.lp_offset)
                  (reg_points r))
            d.d_regs)
        (template_points t))
    d.d_templates

(* {1 Serialization consistency} *)

let check_serials ctx =
  let d = ctx.device in
  let check_list ~loc ~who items ~expected_regs =
    (* Every register the entity spans must be sequenced, and each at
       most once per condition path (unconditional duplicates are
       always an error). *)
    let rec dups = function
      | [] -> ()
      | (i : Ir.serial_item) :: rest ->
          if
            i.si_cond = None
            && List.exists
                 (fun (j : Ir.serial_item) ->
                   j.si_cond = None && String.equal j.si_reg i.si_reg)
                 rest
          then err ctx loc "%s: register %s is serialized twice" who i.si_reg;
          dups rest
    in
    dups items;
    List.iter
      (fun reg ->
        if
          not
            (List.exists
               (fun (i : Ir.serial_item) -> String.equal i.si_reg reg)
               items)
        then
          err ctx loc "%s: register %s is not covered by the serialization"
            who reg)
      expected_regs
  in
  List.iter
    (fun (v : Ir.var) ->
      match v.v_serial with
      | None -> ()
      | Some items ->
          let regs = List.map (fun (r : Ir.reg) -> r.r_name) (Ir.regs_of_var d v) in
          check_list ~loc:v.v_loc
            ~who:(Printf.sprintf "variable %s" v.v_name)
            items ~expected_regs:regs)
    d.d_vars;
  List.iter
    (fun (s : Ir.strct) ->
      match s.s_serial with
      | None -> ()
      | Some items ->
          let regs =
            List.concat_map
              (fun fname ->
                match Ir.find_var d fname with
                | Some v ->
                    List.map (fun (r : Ir.reg) -> r.r_name) (Ir.regs_of_var d v)
                | None -> [])
              s.s_fields
            |> List.sort_uniq String.compare
          in
          check_list ~loc:s.s_loc
            ~who:(Printf.sprintf "structure %s" s.s_name)
            items ~expected_regs:regs;
          (* Serialization conditions must test fields of the structure
             (their value is known when the structure is written) or
             configuration constants. *)
          List.iter
            (fun (i : Ir.serial_item) ->
              match i.si_cond with
              | None -> ()
              | Some c ->
                  if
                    (not (List.mem c.sc_var s.s_fields))
                    && not
                         (List.exists
                            (fun (n, _) -> String.equal n c.sc_var)
                            d.d_consts)
                  then
                    err ctx s.s_loc
                      "structure %s: serialization condition tests %s, which \
                       is not a field of the structure"
                      s.s_name c.sc_var)
            items)
    d.d_structs

(* {1 Entry points} *)

let check (device : Ir.device) =
  let ctx = { diags = Diagnostics.create (); device } in
  List.iter (fun v -> check_var_type ctx v) device.d_vars;
  check_all_actions ctx;
  check_reg_ports ctx;
  check_trigger_sharing ctx;
  check_no_omission ctx;
  check_no_overlap_points ctx;
  check_serials ctx;
  ctx.diags

let check_ok device = not (Diagnostics.has_errors (check device))

let compile ?config ?file src =
  match Resolve.elaborate_string ?config ?file src with
  | Error diags -> Error diags
  | Ok device ->
      let diags = check device in
      if Diagnostics.has_errors diags then Error diags else Ok device
