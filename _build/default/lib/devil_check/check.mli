(** Static verification of Devil specifications (paper §3.1).

    Four property families are checked on the resolved IR:

    - {b Strong typing}: widths of variables against their chunks,
      enumerated-type well-formedness, read/write usage constraints,
      action and serialization value typing, register/port access
      sizes.
    - {b No omission}: every port, port offset, register and coverable
      register bit must be used; readable enumerated types must be
      read-exhaustive.
    - {b No double definition}: entity names and enumeration symbols
      are unique (name clashes are caught during elaboration; the
      checks here cover enumeration internals).
    - {b No overlapping definitions}: an access point (port, offset,
      direction) belongs to at most one register unless the registers
      are distinguished by disjoint pre-actions or masks, or ordered by
      a common serialization; a register bit belongs to at most one
      variable.

    The checker also enforces the trigger-sharing rule of §2.1:
    multiple write-trigger variables cannot share a register unless
    neutral values are provided. *)

module Diagnostics = Devil_syntax.Diagnostics
module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

val check : Ir.device -> Diagnostics.t
(** Runs every check; the result carries errors and warnings. *)

val check_ok : Ir.device -> bool
(** [check_ok d] is true when {!check} reports no error. *)

val compile :
  ?config:(string * Value.t) list ->
  ?file:string ->
  string ->
  (Ir.device, Diagnostics.t) result
(** Full front-end pipeline: lex, parse, elaborate, check. The device
    is returned only when no pass reports an error. *)
