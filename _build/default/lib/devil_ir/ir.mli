(** Resolved intermediate representation of a Devil device.

    Elaboration ({!Resolve}) turns the surface AST into this model:
    names are resolved, parameterized registers are kept as templates
    plus their declared instances, masks are parsed, action values are
    classified, and every variable carries its resolved type. The
    static verifier ({!Devil_check.Check}) and both code generators
    work on this representation. *)

module Loc = Devil_syntax.Loc

type access = Read | Write

type port = {
  p_name : string;
  p_width : int;  (** bits per I/O access on this port *)
  p_offsets : int list;  (** valid offsets, ascending *)
  p_index : int;  (** position among the device's port parameters *)
  p_loc : Loc.t;
}

type located_port = { lp_port : string; lp_offset : int }
(** A concrete communication point: port name + offset. *)

(** A value appearing in an action or serialization condition, after
    name resolution. *)
type operand =
  | O_int of int
  | O_bool of bool
  | O_enum of string  (** case of the target variable's enum type *)
  | O_any  (** the ['*'] wildcard: any value is acceptable *)
  | O_var of string  (** current value of another device variable *)
  | O_param of string  (** register-template parameter, e.g. [i] *)

type assignment =
  | Set_var of { target : string; value : operand }
  | Set_struct of { target : string; fields : (string * operand) list }

type action = assignment list

type reg = {
  r_name : string;
  r_size : int;
  r_read : located_port option;
  r_write : located_port option;
  r_mask : Devil_bits.Mask.t;
  r_pre : action;
  r_post : action;
  r_set : action;
  r_from_template : (string * int list) option;
      (** provenance when declared as an instance, e.g. [("I", \[23\])] *)
  r_loc : Loc.t;
}

type template = {
  t_name : string;
  t_params : (string * int list) list;  (** parameter name, legal values *)
  t_size : int;
  t_read : located_port option;
  t_write : located_port option;
  t_mask : Devil_bits.Mask.t;
  t_pre : action;
  t_post : action;
  t_set : action;
  t_loc : Loc.t;
}

type trigger = {
  tr_read : bool;
  tr_write : bool;
  tr_exempt : exempt option;
}
(** The trigger behaviour: an access has a side effect on the device.

    [tr_exempt = Some (Neutral v)] (written [except V]) names a value
    whose write is side-effect free, so the compiler may use it to
    rewrite sibling variables. [Some (Only v)] (written [for V])
    restricts the side effect to writes of exactly [v]. *)

and exempt = Neutral of Value.t | Only of Value.t

type behaviour = {
  b_volatile : bool;  (** reads are not idempotent *)
  b_trigger : trigger option;
  b_block : bool;  (** generate block-transfer stubs *)
}

type chunk = {
  c_reg : string;
  c_ranges : (int * int) list;  (** (hi, lo) pairs, MSB fragment first *)
}

val chunk_width : chunk -> int

type serial_cond = { sc_var : string; sc_negated : bool; sc_value : operand }
type serial_item = { si_cond : serial_cond option; si_reg : string }

type var = {
  v_name : string;
  v_private : bool;
  v_chunks : chunk list;  (** empty for a pure memory cell *)
  v_type : Dtype.t;
  v_behaviour : behaviour;
  v_pre : action;
  v_post : action;
  v_set : action;
  v_serial : serial_item list option;
  v_struct : string option;  (** owning structure, if a field *)
  v_loc : Loc.t;
}

val var_width : var -> int
(** Total bit width: sum of chunk widths, or the type width for a
    memory cell. *)

type strct = {
  s_name : string;
  s_private : bool;
  s_fields : string list;  (** names of the field variables *)
  s_serial : serial_item list option;
  s_loc : Loc.t;
}

type device = {
  d_name : string;
  d_ports : port list;
  d_consts : (string * Dtype.t) list;  (** configuration parameters *)
  d_regs : reg list;
  d_templates : template list;
  d_vars : var list;  (** includes structure fields *)
  d_structs : strct list;
  d_loc : Loc.t;
}

val find_port : device -> string -> port option
val find_reg : device -> string -> reg option
val find_template : device -> string -> template option
val find_var : device -> string -> var option
val find_struct : device -> string -> strct option

val reg_readable : reg -> bool
val reg_writable : reg -> bool

val public_vars : device -> var list
val public_structs : device -> strct list

val vars_of_reg : device -> string -> var list
(** Variables having at least one chunk over the given register. *)

val regs_of_var : device -> var -> reg list
(** Registers referenced by the variable's chunks, in MSB-first chunk
    order, without duplicates. *)
