lib/devil_ir/dtype.mli: Devil_bits Format Value
