lib/devil_ir/ir.mli: Devil_bits Devil_syntax Dtype Value
