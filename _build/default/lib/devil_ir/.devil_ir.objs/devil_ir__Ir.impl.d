lib/devil_ir/ir.ml: Devil_bits Devil_syntax Dtype List Option String Value
