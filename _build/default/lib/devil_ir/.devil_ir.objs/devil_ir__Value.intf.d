lib/devil_ir/value.mli: Format
