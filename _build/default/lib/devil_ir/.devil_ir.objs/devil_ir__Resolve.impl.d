lib/devil_ir/resolve.ml: Devil_bits Devil_syntax Dtype Ir List Option String Value
