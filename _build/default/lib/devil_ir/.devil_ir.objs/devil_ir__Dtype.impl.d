lib/devil_ir/dtype.ml: Devil_bits Format List Printf String Value
