lib/devil_ir/resolve.mli: Devil_syntax Ir Value
