lib/devil_ir/value.ml: Format String
