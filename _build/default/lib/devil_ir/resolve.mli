(** Elaboration of the surface AST into the resolved IR.

    Elaboration resolves every name (ports, registers, templates,
    variables, enumeration symbols, register parameters), parses masks,
    instantiates declared register instances, evaluates conditional
    declarations against a device configuration, and assembles variable
    behaviours. Name-resolution and well-formedness errors are
    accumulated; the deeper consistency properties of paper §3.1 are
    the province of [Devil_check].

    @param config values for the device's configuration (non-port)
    parameters, needed when the specification contains conditional
    declarations. *)

module Ast = Devil_syntax.Ast
module Diagnostics = Devil_syntax.Diagnostics

val elaborate :
  ?config:(string * Value.t) list ->
  Ast.device ->
  (Ir.device, Diagnostics.t) result

val elaborate_string :
  ?config:(string * Value.t) list ->
  ?file:string ->
  string ->
  (Ir.device, Diagnostics.t) result
(** Lex + parse + elaborate. Syntax errors are converted into a
    single-item diagnostic bag. *)
