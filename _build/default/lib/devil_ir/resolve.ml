module Mask = Devil_bits.Mask
module Bitpat = Devil_bits.Bitpat
module Ast = Devil_syntax.Ast
module Parser = Devil_syntax.Parser
module Diagnostics = Devil_syntax.Diagnostics
module Loc = Devil_syntax.Loc

type env = {
  diags : Diagnostics.t;
  config : (string * Value.t) list;
  mutable ports : Ir.port list;  (* reverse declaration order *)
  mutable consts : (string * Dtype.t) list;
  mutable regs : Ir.reg list;
  mutable templates : Ir.template list;
  mutable vars : Ir.var list;
  mutable structs : Ir.strct list;
}

let err env loc fmt = Diagnostics.error env.diags loc fmt

let lookup_port env name =
  List.find_opt (fun (p : Ir.port) -> String.equal p.p_name name) env.ports

let lookup_const env name =
  List.find_opt (fun (n, _) -> String.equal n name) env.consts

let lookup_reg env name =
  List.find_opt (fun (r : Ir.reg) -> String.equal r.r_name name) env.regs

let lookup_template env name =
  List.find_opt
    (fun (t : Ir.template) -> String.equal t.t_name name)
    env.templates

let lookup_var env name =
  List.find_opt (fun (v : Ir.var) -> String.equal v.v_name name) env.vars

let lookup_struct env name =
  List.find_opt (fun (s : Ir.strct) -> String.equal s.s_name name) env.structs

(* {1 Types} *)

let bits_for_max n =
  let rec go bits = if n < 1 lsl bits then bits else go (bits + 1) in
  if n <= 0 then 1 else go 1

let resolve_dtype env ({ ty; ty_loc } : Ast.dtype_loc) : Dtype.t =
  match ty with
  | Ast.T_bool -> Dtype.Bool
  | Ast.T_int { signed; bits } ->
      if bits <= 0 || bits > 32 then (
        err env ty_loc "integer type width %d is out of range 1..32" bits;
        Dtype.Int { signed; bits = 8 })
      else Dtype.Int { signed; bits }
  | Ast.T_int_set set when Ast.int_set_span set > 65536 ->
      err env ty_loc "integer set type has more than 65536 members";
      Dtype.Int_set { values = [ 0 ]; bits = 1 }
  | Ast.T_int_set set ->
      let values = Ast.int_set_values set in
      let values =
        match values with
        | [] ->
            err env ty_loc "empty integer set type";
            [ 0 ]
        | v :: _ when v < 0 ->
            err env ty_loc "integer set types must be non-negative";
            List.filter (fun v -> v >= 0) values
        | _ -> values
      in
      let max_v = List.fold_left max 0 values in
      if max_v >= 1 lsl 32 then begin
        err env ty_loc "integer set member %d exceeds the 32-bit limit" max_v;
        Dtype.Int_set { values = [ 0 ]; bits = 1 }
      end
      else Dtype.Int_set { values; bits = bits_for_max max_v }
  | Ast.T_enum cases ->
      let resolve_case (c : Ast.enum_case) : Dtype.enum_case option =
        match Bitpat.of_string c.pattern with
        | Error msg ->
            err env c.pattern_loc "%s" msg;
            None
        | Ok pattern ->
            let dir =
              match c.dir with
              | Ast.Dir_read -> Dtype.Read
              | Ast.Dir_write -> Dtype.Write
              | Ast.Dir_both -> Dtype.Both
            in
            Some { Dtype.case_name = c.case_name.name; dir; pattern }
      in
      Dtype.Enum (List.filter_map resolve_case cases)

(* {1 Operands and actions} *)

(* Resolution order for a symbol: register-template parameter, then
   enumeration case of the assignment target's type, then device
   variable. *)
let resolve_operand env ~params ~target_type (av : Ast.action_value) :
    Ir.operand =
  match av with
  | Ast.AV_int n -> Ir.O_int n
  | Ast.AV_bool b -> Ir.O_bool b
  | Ast.AV_any -> Ir.O_any
  | Ast.AV_sym id ->
      if List.exists (String.equal id.name) params then Ir.O_param id.name
      else
        let is_enum_case =
          match target_type with
          | Some ty -> Option.is_some (Dtype.find_case ty id.name)
          | None -> false
        in
        if is_enum_case then Ir.O_enum id.name
        else if Option.is_some (lookup_var env id.name) then Ir.O_var id.name
        else (
          err env id.loc "unresolved symbol %s" id.name;
          Ir.O_any)

let resolve_assignment env ~params (a : Ast.assignment) : Ir.assignment =
  match a with
  | Ast.Assign (target, av) ->
      let target_type =
        match lookup_var env target.name with
        | Some v -> Some v.Ir.v_type
        | None ->
            err env target.loc "assignment to undeclared variable %s"
              target.name;
            None
      in
      Ir.Set_var
        {
          target = target.name;
          value = resolve_operand env ~params ~target_type av;
        }
  | Ast.Assign_struct (target, fields) ->
      (match lookup_struct env target.name with
      | Some _ -> ()
      | None ->
          err env target.loc "assignment to undeclared structure %s"
            target.name);
      let resolve_field ((f, av) : Ast.ident * Ast.action_value) =
        let target_type =
          match lookup_var env f.name with
          | Some v -> Some v.Ir.v_type
          | None ->
              err env f.loc "unknown structure field %s" f.name;
              None
        in
        (f.name, resolve_operand env ~params ~target_type av)
      in
      Ir.Set_struct
        { target = target.name; fields = List.map resolve_field fields }

let resolve_action env ~params (a : Ast.action) : Ir.action =
  List.map (resolve_assignment env ~params) a.assignments

(* {1 Ports and register bodies} *)

let resolve_located_port env (pe : Ast.port_expr) : Ir.located_port option =
  match lookup_port env pe.port_name.name with
  | None ->
      err env pe.port_name.loc "unknown port %s" pe.port_name.name;
      None
  | Some port ->
      let offset = Option.value pe.port_offset ~default:0 in
      if not (List.mem offset port.p_offsets) then
        err env pe.port_loc "offset %d is outside the range of port %s" offset
          port.p_name;
      Some { Ir.lp_port = port.p_name; lp_offset = offset }

type resolved_attrs = {
  ra_mask : (string * Loc.t) option;
  ra_pre : Ir.action;
  ra_post : Ir.action;
  ra_set : Ir.action;
}

let resolve_reg_attrs env ~params ~loc (attrs : Ast.reg_attr list) =
  let init = { ra_mask = None; ra_pre = []; ra_post = []; ra_set = [] } in
  List.fold_left
    (fun acc (attr : Ast.reg_attr) ->
      match attr with
      | Ast.RA_mask { mask_text; mask_loc } ->
          if Option.is_some acc.ra_mask then
            err env mask_loc "duplicate mask attribute";
          { acc with ra_mask = Some (mask_text, mask_loc) }
      | Ast.RA_pre a ->
          { acc with ra_pre = acc.ra_pre @ resolve_action env ~params a }
      | Ast.RA_post a ->
          { acc with ra_post = acc.ra_post @ resolve_action env ~params a }
      | Ast.RA_set a ->
          { acc with ra_set = acc.ra_set @ resolve_action env ~params a })
    init attrs
  |> fun acc ->
  ignore loc;
  acc

let resolve_mask env ~size = function
  | None -> Mask.all_covered size
  | Some (text, loc) -> (
      match Mask.of_string ~width:size text with
      | Ok m -> m
      | Error msg ->
          err env loc "%s" msg;
          Mask.all_covered size)

(* Substitute template parameters with concrete integers. *)
let subst_operand bindings (o : Ir.operand) : Ir.operand =
  match o with
  | Ir.O_param name -> (
      match List.assoc_opt name bindings with
      | Some v -> Ir.O_int v
      | None -> o)
  | Ir.O_int _ | Ir.O_bool _ | Ir.O_enum _ | Ir.O_any | Ir.O_var _ -> o

let subst_action bindings (a : Ir.action) : Ir.action =
  let subst_assignment = function
    | Ir.Set_var { target; value } ->
        Ir.Set_var { target; value = subst_operand bindings value }
    | Ir.Set_struct { target; fields } ->
        Ir.Set_struct
          {
            target;
            fields =
              List.map (fun (f, v) -> (f, subst_operand bindings v)) fields;
          }
  in
  List.map subst_assignment a

(* {1 Registers} *)

let resolve_port_bindings env (bindings : (Ast.access * Ast.port_expr) list)
    ~loc =
  let read = ref None and write = ref None in
  let bind_read lp =
    match !read with
    | None -> read := Some lp
    | Some _ -> err env loc "register has two read ports"
  in
  let bind_write lp =
    match !write with
    | None -> write := Some lp
    | Some _ -> err env loc "register has two write ports"
  in
  List.iter
    (fun ((acc, pe) : Ast.access * Ast.port_expr) ->
      match resolve_located_port env pe with
      | None -> ()
      | Some lp -> (
          match acc with
          | Ast.Acc_read -> bind_read lp
          | Ast.Acc_write -> bind_write lp
          | Ast.Acc_read_write ->
              bind_read lp;
              bind_write lp))
    bindings;
  (!read, !write)

let resolve_register env (r : Ast.reg_decl) =
  let name = r.reg_name.name in
  (if Option.is_some (lookup_reg env name)
   || Option.is_some (lookup_template env name)
  then err env r.reg_name.loc "register %s is declared twice" name);
  match (r.reg_params, r.reg_body) with
  | [], Ast.RB_instance { template; args; args_loc } -> (
      (* Instantiation of a parameterized register. *)
      match lookup_template env template.name with
      | None ->
          err env template.loc "unknown register template %s" template.name
      | Some t ->
          let n_formal = List.length t.t_params
          and n_actual = List.length args in
          if n_formal <> n_actual then
            err env args_loc "template %s expects %d argument(s), got %d"
              t.t_name n_formal n_actual
          else begin
            let bindings = List.combine (List.map fst t.t_params) args in
            List.iter
              (fun ((pname, legal), v) ->
                if not (List.mem v legal) then
                  err env args_loc
                    "argument %d for parameter %s of %s is out of range" v
                    pname t.t_name)
              (List.combine t.t_params args);
            let attrs =
              resolve_reg_attrs env ~params:[] ~loc:r.reg_loc r.reg_attrs
            in
            (match r.reg_size with
            | Some size when size <> t.t_size ->
                err env r.reg_loc
                  "instance size %d differs from template size %d" size
                  t.t_size
            | Some _ | None -> ());
            let mask =
              match attrs.ra_mask with
              | Some (text, loc) -> (
                  match Mask.of_string ~width:t.t_size text with
                  | Ok m -> m
                  | Error msg ->
                      err env loc "%s" msg;
                      t.t_mask)
              | None -> t.t_mask
            in
            let reg : Ir.reg =
              {
                r_name = name;
                r_size = t.t_size;
                r_read = t.t_read;
                r_write = t.t_write;
                r_mask = mask;
                r_pre = subst_action bindings t.t_pre @ attrs.ra_pre;
                r_post = subst_action bindings t.t_post @ attrs.ra_post;
                r_set = subst_action bindings t.t_set @ attrs.ra_set;
                r_from_template = Some (t.t_name, args);
                r_loc = r.reg_loc;
              }
            in
            env.regs <- reg :: env.regs
          end)
  | [], Ast.RB_ports bindings ->
      let size =
        match r.reg_size with
        | Some s -> s
        | None ->
            err env r.reg_loc "register %s needs an explicit size" name;
            8
      in
      let read, write = resolve_port_bindings env bindings ~loc:r.reg_loc in
      let attrs = resolve_reg_attrs env ~params:[] ~loc:r.reg_loc r.reg_attrs in
      let reg : Ir.reg =
        {
          r_name = name;
          r_size = size;
          r_read = read;
          r_write = write;
          r_mask = resolve_mask env ~size attrs.ra_mask;
          r_pre = attrs.ra_pre;
          r_post = attrs.ra_post;
          r_set = attrs.ra_set;
          r_from_template = None;
          r_loc = r.reg_loc;
        }
      in
      env.regs <- reg :: env.regs
  | _ :: _, Ast.RB_instance _ ->
      err env r.reg_loc "a parameterized register cannot be an instance"
  | params, Ast.RB_ports bindings ->
      let size =
        match r.reg_size with
        | Some s -> s
        | None ->
            err env r.reg_loc "register template %s needs an explicit size"
              name;
            8
      in
      let param_names =
        List.map (fun (p : Ast.reg_param) -> p.param_name.name) params
      in
      let read, write = resolve_port_bindings env bindings ~loc:r.reg_loc in
      let attrs =
        resolve_reg_attrs env ~params:param_names ~loc:r.reg_loc r.reg_attrs
      in
      let t_params =
        List.map
          (fun (p : Ast.reg_param) ->
            if Ast.int_set_span p.param_set > 65536 then begin
              err env p.param_name.loc
                "parameter %s ranges over more than 65536 values"
                p.param_name.name;
              (p.param_name.name, [ 0 ])
            end
            else begin
              let values = Ast.int_set_values p.param_set in
              if values = [] then
                err env p.param_name.loc "parameter %s has an empty range"
                  p.param_name.name;
              (p.param_name.name, values)
            end)
          params
      in
      let template : Ir.template =
        {
          t_name = name;
          t_params;
          t_size = size;
          t_read = read;
          t_write = write;
          t_mask = resolve_mask env ~size attrs.ra_mask;
          t_pre = attrs.ra_pre;
          t_post = attrs.ra_post;
          t_set = attrs.ra_set;
          t_loc = r.reg_loc;
        }
      in
      env.templates <- template :: env.templates

(* {1 Variables} *)

let resolve_chunk env (c : Ast.chunk) : Ir.chunk option =
  let reg_name = c.chunk_reg.name in
  let size =
    match lookup_reg env reg_name with
    | Some r -> Some r.Ir.r_size
    | None -> (
        match lookup_template env reg_name with
        | Some _ ->
            err env c.chunk_reg.loc
              "variable chunks cannot reference the parameterized register %s \
               directly; declare an instance first"
              reg_name;
            None
        | None ->
            err env c.chunk_reg.loc "unknown register %s" reg_name;
            None)
  in
  match size with
  | None -> None
  | Some size ->
      let ranges =
        match c.chunk_ranges with
        | [] -> [ (size - 1, 0) ]
        | ranges ->
            List.map
              (fun (item : Ast.int_set_item) ->
                match item with
                | Ast.Single n -> (n, n)
                | Ast.Range (hi, lo) ->
                    if hi < lo then (
                      err env c.chunk_loc
                        "bit range %d..%d is inverted (write high bit first)"
                        hi lo;
                      (lo, hi))
                    else (hi, lo))
              ranges
      in
      List.iter
        (fun (hi, lo) ->
          if lo < 0 || hi >= size then
            err env c.chunk_loc "bit range %d..%d exceeds register %s (%d bits)"
              hi lo reg_name size)
        ranges;
      Some { Ir.c_reg = reg_name; c_ranges = ranges }

let resolve_exempt env ~ty ~loc (e : Ast.exempt) : Ir.exempt option =
  let value_of_av (av : Ast.action_value) : Value.t option =
    match av with
    | Ast.AV_int n -> Some (Value.Int n)
    | Ast.AV_bool b -> Some (Value.Bool b)
    | Ast.AV_sym id ->
        if Option.is_some (Dtype.find_case ty id.name) then
          Some (Value.Enum id.name)
        else (
          err env id.loc "%s is not a case of the variable's type" id.name;
          None)
    | Ast.AV_any ->
        err env loc "'*' cannot be used as a trigger exemption";
        None
  in
  match e with
  | Ast.Exempt_except id ->
      if Option.is_some (Dtype.find_case ty id.name) then
        Some (Ir.Neutral (Value.Enum id.name))
      else (
        err env id.loc "neutral value %s is not a case of the variable's type"
          id.name;
        None)
  | Ast.Exempt_for av -> Option.map (fun v -> Ir.Only v) (value_of_av av)

type var_attr_acc = {
  va_volatile : bool;
  va_trigger : Ir.trigger option;
  va_block : bool;
  va_pre : Ir.action;
  va_post : Ir.action;
  va_set : Ir.action;
}

let resolve_var_attrs env ~ty ~loc (attrs : Ast.var_attr list) =
  let init =
    {
      va_volatile = false;
      va_trigger = None;
      va_block = false;
      va_pre = [];
      va_post = [];
      va_set = [];
    }
  in
  List.fold_left
    (fun acc (attr : Ast.var_attr) ->
      match attr with
      | Ast.VA_volatile -> { acc with va_volatile = true }
      | Ast.VA_block -> { acc with va_block = true }
      | Ast.VA_pre a ->
          { acc with va_pre = acc.va_pre @ resolve_action env ~params:[] a }
      | Ast.VA_post a ->
          { acc with va_post = acc.va_post @ resolve_action env ~params:[] a }
      | Ast.VA_set a ->
          { acc with va_set = acc.va_set @ resolve_action env ~params:[] a }
      | Ast.VA_trigger { t_dir; t_exempt } ->
          let exempt =
            Option.bind t_exempt (resolve_exempt env ~ty ~loc)
          in
          let this : Ir.trigger =
            {
              tr_read =
                (match t_dir with
                | Ast.Trig_read | Ast.Trig_both -> true
                | Ast.Trig_write -> false);
              tr_write =
                (match t_dir with
                | Ast.Trig_write | Ast.Trig_both -> true
                | Ast.Trig_read -> false);
              tr_exempt = exempt;
            }
          in
          let merged =
            match acc.va_trigger with
            | None -> this
            | Some prev ->
                {
                  Ir.tr_read = prev.tr_read || this.tr_read;
                  tr_write = prev.tr_write || this.tr_write;
                  tr_exempt =
                    (match this.tr_exempt with
                    | Some _ as e -> e
                    | None -> prev.tr_exempt);
                }
          in
          { acc with va_trigger = Some merged })
    init attrs

let resolve_serial_cond env (c : Ast.serial_cond) : Ir.serial_cond =
  let var_type =
    match lookup_var env c.sc_var.name with
    | Some v -> Some v.Ir.v_type
    | None -> (
        match lookup_const env c.sc_var.name with
        | Some (_, ty) -> Some ty
        | None ->
            err env c.sc_var.loc "unknown variable %s in condition"
              c.sc_var.name;
            None)
  in
  {
    Ir.sc_var = c.sc_var.name;
    sc_negated = c.sc_negated;
    sc_value = resolve_operand env ~params:[] ~target_type:var_type c.sc_value;
  }

let resolve_serial_items env (items : Ast.serial_item list) :
    Ir.serial_item list =
  List.map
    (fun (item : Ast.serial_item) ->
      (match lookup_reg env item.si_reg.name with
      | Some _ -> ()
      | None ->
          err env item.si_reg.loc "unknown register %s in serialization"
            item.si_reg.name);
      {
        Ir.si_cond = Option.map (resolve_serial_cond env) item.si_cond;
        si_reg = item.si_reg.name;
      })
    items

let resolve_variable env ~struct_name (v : Ast.var_decl) =
  let name = v.var_name.name in
  if Option.is_some (lookup_var env name) then
    err env v.var_name.loc "variable %s is declared twice" name;
  let ty =
    match v.var_type with
    | Some t -> resolve_dtype env t
    | None ->
        err env v.var_loc "variable %s must be given a type" name;
        Dtype.Int { signed = false; bits = 8 }
  in
  let chunks = List.filter_map (resolve_chunk env) v.var_chunks in
  (* Register the variable before resolving its attributes: a set action
     may reference the variable itself (e.g. [set {xm = XRAE}] on XRAE). *)
  let placeholder : Ir.var =
    {
      v_name = name;
      v_private = v.var_private;
      v_chunks = chunks;
      v_type = ty;
      v_behaviour = { b_volatile = false; b_trigger = None; b_block = false };
      v_pre = [];
      v_post = [];
      v_set = [];
      v_serial = None;
      v_struct = struct_name;
      v_loc = v.var_loc;
    }
  in
  env.vars <- placeholder :: env.vars;
  let attrs = resolve_var_attrs env ~ty ~loc:v.var_loc v.var_attrs in
  let serial = Option.map (resolve_serial_items env) v.var_serial in
  let resolved =
    {
      placeholder with
      v_behaviour =
        {
          Ir.b_volatile = attrs.va_volatile;
          b_trigger = attrs.va_trigger;
          b_block = attrs.va_block;
        };
      v_pre = attrs.va_pre;
      v_post = attrs.va_post;
      v_set = attrs.va_set;
      v_serial = serial;
    }
  in
  env.vars <-
    (match env.vars with
    | _placeholder :: rest -> resolved :: rest
    | [] -> [ resolved ])

(* {1 Structures, conditionals, devices} *)

let eval_condition env (c : Ast.serial_cond) : bool =
  let name = c.sc_var.name in
  match lookup_const env name with
  | None ->
      err env c.sc_var.loc
        "conditional declarations must test a configuration parameter; %s is \
         not one"
        name;
      false
  | Some (_, ty) -> (
      match List.assoc_opt name env.config with
      | None ->
          err env c.sc_var.loc
            "no configuration value supplied for parameter %s" name;
          false
      | Some actual ->
          let expected : Value.t option =
            match c.sc_value with
            | Ast.AV_int n -> Some (Value.Int n)
            | Ast.AV_bool b -> Some (Value.Bool b)
            | Ast.AV_sym id ->
                if Option.is_some (Dtype.find_case ty id.name) then
                  Some (Value.Enum id.name)
                else (
                  err env id.loc "%s is not a case of parameter %s's type"
                    id.name name;
                  None)
            | Ast.AV_any ->
                err env c.sc_var.loc "'*' is not a valid condition value";
                None
          in
          (match expected with
          | None -> false
          | Some e ->
              let eq = Value.equal actual e in
              if c.sc_negated then not eq else eq))

let rec resolve_decl env (d : Ast.decl) =
  match d with
  | Ast.D_register r -> resolve_register env r
  | Ast.D_variable v -> resolve_variable env ~struct_name:None v
  | Ast.D_structure s -> resolve_structure env s
  | Ast.D_conditional { cd_cond; cd_then; cd_else; _ } ->
      let branch = if eval_condition env cd_cond then cd_then else cd_else in
      List.iter (resolve_decl env) branch

and resolve_structure env (s : Ast.struct_decl) =
  let name = s.struct_name.name in
  if Option.is_some (lookup_struct env name) then
    err env s.struct_name.loc "structure %s is declared twice" name;
  List.iter
    (fun (f : Ast.var_decl) -> resolve_variable env ~struct_name:(Some name) f)
    s.struct_fields;
  let fields =
    List.map (fun (f : Ast.var_decl) -> f.var_name.name) s.struct_fields
  in
  let serial = Option.map (resolve_serial_items env) s.struct_serial in
  let strct : Ir.strct =
    {
      s_name = name;
      s_private = s.struct_private;
      s_fields = fields;
      s_serial = serial;
      s_loc = s.struct_loc;
    }
  in
  env.structs <- strct :: env.structs

let resolve_device_param env (p : Ast.device_param) =
  let name = p.dp_name.name in
  if Option.is_some (lookup_port env name) || Option.is_some (lookup_const env name)
  then err env p.dp_name.loc "device parameter %s is declared twice" name;
  match p.dp_kind with
  | Ast.DP_port { width; offsets } ->
      if width <> 8 && width <> 16 && width <> 32 then
        err env p.dp_loc "port width must be 8, 16 or 32 bits (got %d)" width;
      let offsets =
        if Ast.int_set_span offsets > 65536 then begin
          err env p.dp_loc "port %s has more than 65536 offsets" name;
          { offsets with Ast.items = [ Ast.Single 0 ] }
        end
        else offsets
      in
      let port : Ir.port =
        {
          p_name = name;
          p_width = width;
          p_offsets = Ast.int_set_values offsets;
          p_index = List.length env.ports;
          p_loc = p.dp_loc;
        }
      in
      env.ports <- port :: env.ports
  | Ast.DP_const ty ->
      env.consts <- (name, resolve_dtype env ty) :: env.consts

let elaborate ?(config = []) (d : Ast.device) =
  let env =
    {
      diags = Diagnostics.create ();
      config;
      ports = [];
      consts = [];
      regs = [];
      templates = [];
      vars = [];
      structs = [];
    }
  in
  List.iter (resolve_device_param env) d.dev_params;
  List.iter (resolve_decl env) d.dev_decls;
  if Diagnostics.has_errors env.diags then Error env.diags
  else
    Ok
      {
        Ir.d_name = d.dev_name.name;
        d_ports = List.rev env.ports;
        d_consts = List.rev env.consts;
        d_regs = List.rev env.regs;
        d_templates = List.rev env.templates;
        d_vars = List.rev env.vars;
        d_structs = List.rev env.structs;
        d_loc = d.dev_loc;
      }

let elaborate_string ?config ?file src =
  match Parser.parse_device_result ?file src with
  | Error item ->
      let diags = Diagnostics.create () in
      Diagnostics.error diags item.Diagnostics.loc "%s" item.Diagnostics.message;
      Error diags
  | Ok ast -> elaborate ?config ast
