(** Resolved Devil variable types, and the encoding between abstract
    values and raw register bits.

    Devil variables are strongly typed (paper §2.1): booleans, signed or
    unsigned integers of a given size, ranges or sets of integers, and
    enumerated types whose cases map symbols to bit patterns with a
    direction (read [<=], write [=>], or both [<=>]). *)

type dir = Read | Write | Both

type enum_case = { case_name : string; dir : dir; pattern : Devil_bits.Bitpat.t }

type t =
  | Bool
  | Int of { signed : bool; bits : int }
  | Int_set of { values : int list; bits : int }
      (** [values] sorted ascending; [bits] = width of the encoding *)
  | Enum of enum_case list

val width : t -> int
(** Natural bit width of the type's encoding. *)

val find_case : t -> string -> enum_case option

val readable_case : dir -> bool
val writable_case : dir -> bool

val encode : t -> Value.t -> (int, string) result
(** Value → raw bits, for writing to the device. Rejects values outside
    the type (wrong kind, out of range, read-only enum case). *)

val decode : t -> int -> (Value.t, string) result
(** Raw bits → value, for reads. For enumerated types the first
    readable case whose pattern matches wins. *)

val validate_write : t -> Value.t -> (unit, string) result
(** The §3.2 dynamic check on writes, without computing the encoding. *)

val validate_read_raw : t -> int -> (unit, string) result
(** The §3.2 optional check after reads: does the device's raw value
    belong to the type? *)

val pp : Format.formatter -> t -> unit
