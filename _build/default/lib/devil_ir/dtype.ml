module Bitpat = Devil_bits.Bitpat
module Bitops = Devil_bits.Bitops

type dir = Read | Write | Both

type enum_case = { case_name : string; dir : dir; pattern : Bitpat.t }

type t =
  | Bool
  | Int of { signed : bool; bits : int }
  | Int_set of { values : int list; bits : int }
  | Enum of enum_case list

let width = function
  | Bool -> 1
  | Int { bits; _ } -> bits
  | Int_set { bits; _ } -> bits
  | Enum [] -> 0
  | Enum (c :: _) -> Bitpat.width c.pattern

let find_case t name =
  match t with
  | Enum cases -> List.find_opt (fun c -> String.equal c.case_name name) cases
  | Bool | Int _ | Int_set _ -> None

let readable_case = function Read | Both -> true | Write -> false
let writable_case = function Write | Both -> true | Read -> false

let encode t (v : Value.t) =
  match (t, v) with
  | Bool, Bool b -> Ok (if b then 1 else 0)
  | Int { signed = false; bits }, Int n ->
      if Bitops.fits ~width:bits n then Ok n
      else Error (Printf.sprintf "value %d does not fit in int(%d)" n bits)
  | Int { signed = true; bits }, Int n ->
      if n >= -(1 lsl (bits - 1)) && n < 1 lsl (bits - 1) then
        Ok (Bitops.to_unsigned ~width:bits n)
      else
        Error (Printf.sprintf "value %d does not fit in signed int(%d)" n bits)
  | Int_set { values; bits = _ }, Int n ->
      if List.mem n values then Ok n
      else Error (Printf.sprintf "value %d is not a member of the range type" n)
  | Enum cases, Enum name -> (
      match List.find_opt (fun c -> String.equal c.case_name name) cases with
      | None -> Error (Printf.sprintf "unknown enumeration symbol %s" name)
      | Some { dir; pattern; _ } ->
          if not (writable_case dir) then
            Error (Printf.sprintf "symbol %s is read-only" name)
          else (
            match Bitpat.value pattern with
            | Some v -> Ok v
            | None ->
                Error
                  (Printf.sprintf "symbol %s has a wildcard pattern %s"
                     name (Bitpat.to_string pattern))))
  | (Bool | Int _ | Int_set _ | Enum _), _ ->
      Error
        (Printf.sprintf "value %s has the wrong kind for this type"
           (Value.to_string v))

let decode t raw =
  match t with
  | Bool -> Ok (Value.Bool (raw land 1 = 1))
  | Int { signed = false; bits } -> Ok (Value.Int (raw land Bitops.width_mask bits))
  | Int { signed = true; bits } -> Ok (Value.Int (Bitops.sign_extend ~width:bits raw))
  | Int_set _ -> Ok (Value.Int raw)
  | Enum cases -> (
      let readable =
        List.filter (fun c -> readable_case c.dir) cases
      in
      match List.find_opt (fun c -> Bitpat.matches c.pattern raw) readable with
      | Some c -> Ok (Value.Enum c.case_name)
      | None ->
          Error
            (Printf.sprintf
               "raw value %d matches no readable enumeration case" raw))

let validate_write t v =
  match encode t v with Ok _ -> Ok () | Error e -> Error e

let validate_read_raw t raw =
  match t with
  | Bool | Int _ -> Ok ()
  | Int_set { values; _ } ->
      if List.mem raw values then Ok ()
      else
        Error
          (Printf.sprintf "device delivered %d, outside the declared range"
             raw)
  | Enum _ -> (
      match decode t raw with Ok _ -> Ok () | Error e -> Error e)

let pp_dir fmt = function
  | Read -> Format.pp_print_string fmt "<="
  | Write -> Format.pp_print_string fmt "=>"
  | Both -> Format.pp_print_string fmt "<=>"

let pp fmt = function
  | Bool -> Format.pp_print_string fmt "bool"
  | Int { signed; bits } ->
      Format.fprintf fmt "%sint(%d)" (if signed then "signed " else "") bits
  | Int_set { values; _ } ->
      Format.fprintf fmt "int{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
           Format.pp_print_int)
        values
  | Enum cases ->
      let pp_case fmt c =
        Format.fprintf fmt "%s %a %a" c.case_name pp_dir c.dir Bitpat.pp
          c.pattern
      in
      Format.fprintf fmt "{ %a }"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_case)
        cases
