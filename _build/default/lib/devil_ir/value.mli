(** Abstract values of Devil device variables.

    These are the values the driver programmer manipulates through the
    generated interface — integers, booleans and enumeration symbols —
    as opposed to the raw register bits they encode to. *)

type t =
  | Int of int
  | Bool of bool
  | Enum of string  (** an enumeration case name, e.g. ["CONFIGURATION"] *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val to_string : t -> string
