module Loc = Devil_syntax.Loc

type access = Read | Write

type port = {
  p_name : string;
  p_width : int;
  p_offsets : int list;
  p_index : int;
  p_loc : Loc.t;
}

type located_port = { lp_port : string; lp_offset : int }

type operand =
  | O_int of int
  | O_bool of bool
  | O_enum of string
  | O_any
  | O_var of string
  | O_param of string

type assignment =
  | Set_var of { target : string; value : operand }
  | Set_struct of { target : string; fields : (string * operand) list }

type action = assignment list

type reg = {
  r_name : string;
  r_size : int;
  r_read : located_port option;
  r_write : located_port option;
  r_mask : Devil_bits.Mask.t;
  r_pre : action;
  r_post : action;
  r_set : action;
  r_from_template : (string * int list) option;
  r_loc : Loc.t;
}

type template = {
  t_name : string;
  t_params : (string * int list) list;
  t_size : int;
  t_read : located_port option;
  t_write : located_port option;
  t_mask : Devil_bits.Mask.t;
  t_pre : action;
  t_post : action;
  t_set : action;
  t_loc : Loc.t;
}

type trigger = { tr_read : bool; tr_write : bool; tr_exempt : exempt option }
and exempt = Neutral of Value.t | Only of Value.t

type behaviour = {
  b_volatile : bool;
  b_trigger : trigger option;
  b_block : bool;
}

type chunk = { c_reg : string; c_ranges : (int * int) list }

let chunk_width c =
  List.fold_left (fun acc (hi, lo) -> acc + hi - lo + 1) 0 c.c_ranges

type serial_cond = { sc_var : string; sc_negated : bool; sc_value : operand }
type serial_item = { si_cond : serial_cond option; si_reg : string }

type var = {
  v_name : string;
  v_private : bool;
  v_chunks : chunk list;
  v_type : Dtype.t;
  v_behaviour : behaviour;
  v_pre : action;
  v_post : action;
  v_set : action;
  v_serial : serial_item list option;
  v_struct : string option;
  v_loc : Loc.t;
}

let var_width v =
  match v.v_chunks with
  | [] -> Dtype.width v.v_type
  | chunks -> List.fold_left (fun acc c -> acc + chunk_width c) 0 chunks

type strct = {
  s_name : string;
  s_private : bool;
  s_fields : string list;
  s_serial : serial_item list option;
  s_loc : Loc.t;
}

type device = {
  d_name : string;
  d_ports : port list;
  d_consts : (string * Dtype.t) list;
  d_regs : reg list;
  d_templates : template list;
  d_vars : var list;
  d_structs : strct list;
  d_loc : Loc.t;
}

let find_by name proj list =
  List.find_opt (fun x -> String.equal (proj x) name) list

let find_port d name = find_by name (fun p -> p.p_name) d.d_ports
let find_reg d name = find_by name (fun r -> r.r_name) d.d_regs
let find_template d name = find_by name (fun t -> t.t_name) d.d_templates
let find_var d name = find_by name (fun v -> v.v_name) d.d_vars
let find_struct d name = find_by name (fun s -> s.s_name) d.d_structs

let reg_readable r = Option.is_some r.r_read
let reg_writable r = Option.is_some r.r_write

let public_vars d = List.filter (fun v -> not v.v_private) d.d_vars
let public_structs d = List.filter (fun s -> not s.s_private) d.d_structs

let vars_of_reg d reg_name =
  List.filter
    (fun v ->
      List.exists (fun c -> String.equal c.c_reg reg_name) v.v_chunks)
    d.d_vars

let regs_of_var d v =
  let add acc name =
    if List.exists (fun r -> String.equal r.r_name name) acc then acc
    else
      match find_reg d name with Some r -> r :: acc | None -> acc
  in
  List.rev (List.fold_left (fun acc c -> add acc c.c_reg) [] v.v_chunks)
