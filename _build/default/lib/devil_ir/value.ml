type t = Int of int | Bool of bool | Enum of string

let pp fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Bool b -> Format.fprintf fmt "%b" b
  | Enum s -> Format.pp_print_string fmt s

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Enum x, Enum y -> String.equal x y
  | (Int _ | Bool _ | Enum _), _ -> false

let to_string t = Format.asprintf "%a" pp t
