lib/devil_specs/specs.mli: Devil_ir
