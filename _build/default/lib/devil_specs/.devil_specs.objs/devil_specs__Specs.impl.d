lib/devil_specs/specs.ml: Devil_check Devil_ir Devil_syntax Format
