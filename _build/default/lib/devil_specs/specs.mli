(** The specification library: Devil sources for the devices studied in
    the paper (§2: "mouse, sound, DMA, interrupt, Ethernet, video, and
    IDE disk controllers"), plus compiled, verified IR for each.

    The [*_source] values are the authoritative Devil texts; [compiled]
    accessors run the full front-end ({!Devil_check.Check.compile}) and
    raise [Failure] if the bundled specification ever fails its own
    verification — the test suite pins this down. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

val busmouse_source : string
(** Logitech busmouse controller — the paper's Figure 1. *)

val ne2000_source : string
(** NE2000 Ethernet controller (paper §2.1 command-register fragment,
    completed with the DP8390 page-0/page-1 register set). *)

val ide_source : string
(** IDE disk controller task file (paper §2.2 and Table 2). *)

val piix4_ide_source : string
(** Intel PIIX4 PCI busmaster IDE function (paper §4.3). *)

val dma8237_source : string
(** Intel 8237A DMA controller (paper §2.2, register serialization). *)

val pic8259_source : string
(** Intel 8259A interrupt controller (paper §2.2, control-flow based
    serialization). The device takes two configuration parameters
    selecting single/cascade wiring and the ICW4 requirement. *)

val cs4236b_source : string
(** Crystal CS4236B sound controller (paper §2.2, automata-based
    addressing through the extended-register access state machine). *)

val permedia2_source : string
(** 3Dlabs Permedia2 graphics controller, 2D engine subset used by the
    accelerated X11 driver (paper §4.3, Tables 3 and 4). *)

val uart16550_source : string
(** 16550 UART — an extension device beyond the paper's seven: the
    DLAB-selected divisor-latch overlay is expressed with disjoint
    pre-actions. *)

val mc146818_source : string
(** MC146818 real-time clock — a second extension device: the classic
    0x70/0x71 index/data pair as a parameterized register. *)

val i8042_source : string
(** i8042 keyboard controller — a third extension device: the 0x64/0x60
    command/data pair with a write-triggered command register. *)

val all : (string * string) list
(** [(name, source)] for every bundled specification. *)

val compile_exn :
  ?config:(string * Value.t) list -> name:string -> string -> Ir.device
(** Compiles a source text, raising [Failure] with the diagnostics when
    the front-end rejects it. *)

val busmouse : unit -> Ir.device
val ne2000 : unit -> Ir.device
val ide : unit -> Ir.device
val piix4_ide : unit -> Ir.device
val dma8237 : unit -> Ir.device

val pic8259 : ?master:bool -> unit -> Ir.device
(** The 8259A specification contains conditional declarations keyed on
    the [is_master] configuration parameter (ICW3 holds a cascade map
    on the master and a slave identity on a slave). Default: master. *)

val cs4236b : unit -> Ir.device
val permedia2 : unit -> Ir.device
val uart16550 : unit -> Ir.device
val mc146818 : unit -> Ir.device
val i8042 : unit -> Ir.device
