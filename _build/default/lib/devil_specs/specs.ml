module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Check = Devil_check.Check
module Diagnostics = Devil_syntax.Diagnostics

(* {1 Logitech busmouse} — the paper's Figure 1, verbatim up to layout. *)

let busmouse_source =
  {|
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  // Signature register (SR)
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);

  // Configuration register (CR)
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };

  // Interrupt register
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };

  // Index register
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);

  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];

  structure mouse_state = {
    variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
    variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
    variable buttons = y_high[7..5], volatile : int(3);
  };
}
|}

(* {1 NE2000 Ethernet} — DP8390 core: the paper's command-register
   fragment (§2.1), completed with the page-0/page-1 register set, the
   remote-DMA data port and the reset port. *)

let ne2000_source =
  {|
device ne2000 (base : bit[8] port @ {0..16,31})
{
  // Command register, shared by all pages.
  register cmd = base @ 0 : bit[8];
  variable st = cmd[1..0], write trigger except NEUTRAL : {
    NEUTRAL <=> '00', STOP <=> '01', START <=> '10', INVALID <= '11' };
  variable txp = cmd[2], write trigger except NOP : {
    NOP <=> '0', TRANSMIT => '1', TRANSMITTING <= '1' };
  variable rd = cmd[5..3], write trigger except NODMA : {
    NODMA <=> '100', IDLE <= '000', REMOTE_READ <=> '001',
    REMOTE_WRITE <=> '010', SEND_PACKET <=> '011', DONE <= '1*1',
    COMPLETE <= '110' };
  private variable page = cmd[7..6] : int(2);

  // Page 0, write side.
  register pstart_reg = write base @ 1, pre {page = 0} : bit[8];
  variable page_start = pstart_reg : int(8);
  register pstop_reg = write base @ 2, pre {page = 0} : bit[8];
  variable page_stop = pstop_reg : int(8);
  register bnry_reg = base @ 3, pre {page = 0} : bit[8];
  variable boundary = bnry_reg : int(8);
  register tpsr_reg = write base @ 4, pre {page = 0} : bit[8];
  variable tx_page_start = tpsr_reg : int(8);
  register tbcr0 = write base @ 5, pre {page = 0} : bit[8];
  register tbcr1 = write base @ 6, pre {page = 0} : bit[8];
  variable tx_byte_count = tbcr1 # tbcr0 : int(16);

  // Interrupt status: writing 1 acknowledges, writing 0 keeps.
  register isr_reg = base @ 7, pre {page = 0} : bit[8];
  structure interrupt_status = {
    variable prx = isr_reg[0], volatile, write trigger except KEEP_PRX : {
      CLEAR_PRX => '1', KEEP_PRX => '0', RAISED_PRX <= '1', CLEAR0_PRX <= '0' };
    variable ptx = isr_reg[1], volatile, write trigger except KEEP_PTX : {
      CLEAR_PTX => '1', KEEP_PTX => '0', RAISED_PTX <= '1', CLEAR0_PTX <= '0' };
    variable rxe = isr_reg[2], volatile, write trigger except KEEP_RXE : {
      CLEAR_RXE => '1', KEEP_RXE => '0', RAISED_RXE <= '1', CLEAR0_RXE <= '0' };
    variable txe = isr_reg[3], volatile, write trigger except KEEP_TXE : {
      CLEAR_TXE => '1', KEEP_TXE => '0', RAISED_TXE <= '1', CLEAR0_TXE <= '0' };
    variable ovw = isr_reg[4], volatile, write trigger except KEEP_OVW : {
      CLEAR_OVW => '1', KEEP_OVW => '0', RAISED_OVW <= '1', CLEAR0_OVW <= '0' };
    variable cnt = isr_reg[5], volatile, write trigger except KEEP_CNT : {
      CLEAR_CNT => '1', KEEP_CNT => '0', RAISED_CNT <= '1', CLEAR0_CNT <= '0' };
    variable rdc = isr_reg[6], volatile, write trigger except KEEP_RDC : {
      CLEAR_RDC => '1', KEEP_RDC => '0', RAISED_RDC <= '1', CLEAR0_RDC <= '0' };
    variable rst = isr_reg[7], volatile, write trigger except KEEP_RST : {
      CLEAR_RST => '1', KEEP_RST => '0', RAISED_RST <= '1', CLEAR0_RST <= '0' };
  };

  // Remote DMA set-up.
  register rsar0 = write base @ 8, pre {page = 0} : bit[8];
  register rsar1 = write base @ 9, pre {page = 0} : bit[8];
  variable remote_start = rsar1 # rsar0 : int(16);
  register rbcr0 = write base @ 10, pre {page = 0} : bit[8];
  register rbcr1 = write base @ 11, pre {page = 0} : bit[8];
  variable remote_count = rbcr1 # rbcr0 : int(16);

  // Receive / transmit configuration and status.
  register rcr_reg = write base @ 12, pre {page = 0}, mask '00......' : bit[8];
  variable accept_errors = rcr_reg[0] : bool;
  variable accept_runts = rcr_reg[1] : bool;
  variable accept_broadcast = rcr_reg[2] : bool;
  variable accept_multicast = rcr_reg[3] : bool;
  variable promiscuous = rcr_reg[4] : bool;
  variable monitor = rcr_reg[5] : bool;
  register rsr_reg = read base @ 12, pre {page = 0} : bit[8];
  variable rx_status = rsr_reg, volatile : int(8);

  register tcr_reg = write base @ 13, pre {page = 0}, mask '000.....' : bit[8];
  variable inhibit_crc = tcr_reg[0] : bool;
  variable loopback_mode = tcr_reg[2..1] : int(2);
  variable auto_transmit = tcr_reg[3] : bool;
  variable collision_offset = tcr_reg[4] : bool;
  register tsr_reg = read base @ 13, pre {page = 0} : bit[8];
  variable tx_status = tsr_reg, volatile : int(8);

  register dcr_reg = write base @ 14, pre {page = 0}, mask '0.......' : bit[8];
  variable word_transfer = dcr_reg[0] : { WORD_WIDE => '1', BYTE_WIDE => '0' };
  variable byte_order = dcr_reg[1] : bool;
  variable long_address = dcr_reg[2] : bool;
  variable loopback_select = dcr_reg[3] : { NORMAL_OP => '1', LOOPBACK => '0' };
  variable auto_init = dcr_reg[4] : bool;
  variable fifo_threshold = dcr_reg[6..5] : int(2);
  register cntr1_reg = read base @ 14, pre {page = 0} : bit[8];
  variable frame_error_count = cntr1_reg, volatile : int(8);

  register imr_reg = write base @ 15, pre {page = 0}, mask '0.......' : bit[8];
  variable irq_mask = imr_reg[6..0] : int(7);
  register cntr2_reg = read base @ 15, pre {page = 0} : bit[8];
  variable missed_count = cntr2_reg, volatile : int(8);

  // Page 1: station address and current receive page.
  register par0 = base @ 1, pre {page = 1} : bit[8];
  variable mac0 = par0 : int(8);
  register par1 = base @ 2, pre {page = 1} : bit[8];
  variable mac1 = par1 : int(8);
  register par2 = base @ 3, pre {page = 1} : bit[8];
  variable mac2 = par2 : int(8);
  register par3 = base @ 4, pre {page = 1} : bit[8];
  variable mac3 = par3 : int(8);
  register par4 = base @ 5, pre {page = 1} : bit[8];
  variable mac4 = par4 : int(8);
  register par5 = base @ 6, pre {page = 1} : bit[8];
  variable mac5 = par5 : int(8);
  register curr_reg = base @ 7, pre {page = 1} : bit[8];
  variable current_page = curr_reg, volatile : int(8);

  // Remote DMA data port and reset port.
  register data_reg = base @ 16 : bit[8];
  variable remote_data = data_reg, trigger, volatile, block : int(8);
  register reset_reg = base @ 31 : bit[8];
  variable reset = reset_reg, volatile, write trigger : int(8);
}
|}

(* {1 IDE disk controller} — task file (command block + control block),
   including the paper's block-transfer data variable (§2.2). *)

let ide_source =
  {|
device ide (data : bit[16] port @ {0},
            cmd : bit[8] port @ {1..7},
            ctrl : bit[8] port @ {0})
{
  // 16-bit data window; a sector is 256 transfers.
  register ide_data = data @ 0 : bit[16];
  variable Ide_data = ide_data, trigger, volatile, block : int(16);

  // Error (read) / features (write) share offset 1.
  register error_reg = read cmd @ 1 : bit[8];
  variable error_flags = error_reg, volatile : int(8);
  register features_reg = write cmd @ 1 : bit[8];
  variable features = features_reg : int(8);

  register sector_count_reg = cmd @ 2 : bit[8];
  variable sector_count = sector_count_reg : int(8);
  register lba_low_reg = cmd @ 3 : bit[8];
  variable lba_low = lba_low_reg : int(8);
  register lba_mid_reg = cmd @ 4 : bit[8];
  variable lba_mid = lba_mid_reg : int(8);
  register lba_high_reg = cmd @ 5 : bit[8];
  variable lba_high = lba_high_reg : int(8);

  // Drive/head: bits 7 and 5 wired to 1.
  register drive_head_reg = cmd @ 6, mask '1.1.....' : bit[8];
  variable lba_enable = drive_head_reg[6] : { LBA_MODE => '1', CHS_MODE => '0' };
  variable drive_select = drive_head_reg[4] : { MASTER <=> '0', SLAVE <=> '1' };
  variable head = drive_head_reg[3..0] : int(4);

  // Status (read) / command (write) share offset 7.
  register status_reg = read cmd @ 7 : bit[8];
  structure ide_status = {
    variable err = status_reg[0], volatile : bool;
    variable idx = status_reg[1], volatile : bool;
    variable corr = status_reg[2], volatile : bool;
    variable drq = status_reg[3], volatile : bool;
    variable dsc = status_reg[4], volatile : bool;
    variable df = status_reg[5], volatile : bool;
    variable drdy = status_reg[6], volatile : bool;
    variable bsy = status_reg[7], volatile : bool;
  };
  register command_reg = write cmd @ 7 : bit[8];
  variable command = command_reg, write trigger : {
    READ_SECTORS => '00100000', WRITE_SECTORS => '00110000',
    READ_DMA => '11001000', WRITE_DMA => '11001010',
    IDENTIFY => '11101100', FLUSH_CACHE => '11100111' };

  // Control block: device control (write) / alternate status (read).
  register dev_ctl_reg = write ctrl @ 0, mask '00000..0' : bit[8];
  variable soft_reset = dev_ctl_reg[2], write trigger except RUN : {
    RESET => '1', RUN => '0' };
  variable irq_enable = dev_ctl_reg[1] : { IRQ_OFF => '1', IRQ_ON => '0' };
  register alt_status_reg = read ctrl @ 0 : bit[8];
  variable alt_status = alt_status_reg, volatile : int(8);
}
|}

(* {1 Intel PIIX4 busmaster IDE} — the PCI busmaster function the paper
   specified alongside the IDE controller for the DMA experiments. *)

let piix4_ide_source =
  {|
device piix4_ide (bm : bit[8] port @ {0,2}, prd : bit[32] port @ {0})
{
  // Busmaster command: bit 0 start/stop, bit 3 direction.
  register bmic = bm @ 0, mask '0000.00.' : bit[8];
  variable bm_engine = bmic[0], write trigger except BM_STOP : {
    BM_START => '1', BM_STOP => '0', BM_RUNNING <= '1', BM_IDLE <= '0' };
  variable bm_direction = bmic[3] : {
    BM_TO_MEMORY <=> '1', BM_FROM_MEMORY <=> '0' };

  // Busmaster status: bit 0 active (read-only), bits 1-2 write-1-clear.
  register bmis = bm @ 2, mask '00000...' : bit[8];
  variable bm_active = bmis[0], volatile, write trigger except KEEP_ACT : {
    KEEP_ACT => '0', ACTIVE <= '1', INACTIVE <= '0' };
  variable bm_error = bmis[1], volatile, write trigger except KEEP_ERR : {
    CLEAR_ERR => '1', KEEP_ERR => '0', FAULT <= '1', OK <= '0' };
  variable bm_irq = bmis[2], volatile, write trigger except KEEP_IRQ : {
    CLEAR_IRQ => '1', KEEP_IRQ => '0', RAISED <= '1', QUIET <= '0' };

  // Physical-region-descriptor table base address.
  register prd_reg = prd @ 0 : bit[32];
  variable prd_address = prd_reg : int(32);
}
|}

(* {1 Intel 8237A DMA controller} — the paper's register-serialization
   example (§2.2): 16-bit counters behind a single 8-bit port with a
   flip-flop-reset pre-action. *)

let dma8237_source =
  {|
device dma8237 (base : bit[8] port @ {0..15})
{
  // Writing any value to the flip-flop port resets the byte pointer.
  register ff_reg = write base @ 12 : bit[8];
  private variable flip_flop = ff_reg, write trigger : int(8);

  // Channel 0..3 base address and count, low byte then high byte.
  register addr0_low = base @ 0, pre {flip_flop = *} : bit[8];
  register addr0_high = base @ 0 : bit[8];
  variable address0 = addr0_high # addr0_low : int(16)
    serialized as { addr0_low; addr0_high };
  register cnt0_low = base @ 1, pre {flip_flop = *} : bit[8];
  register cnt0_high = base @ 1 : bit[8];
  variable count0 = cnt0_high # cnt0_low : int(16)
    serialized as { cnt0_low; cnt0_high };

  register addr1_low = base @ 2, pre {flip_flop = *} : bit[8];
  register addr1_high = base @ 2 : bit[8];
  variable address1 = addr1_high # addr1_low : int(16)
    serialized as { addr1_low; addr1_high };
  register cnt1_low = base @ 3, pre {flip_flop = *} : bit[8];
  register cnt1_high = base @ 3 : bit[8];
  variable count1 = cnt1_high # cnt1_low : int(16)
    serialized as { cnt1_low; cnt1_high };

  register addr2_low = base @ 4, pre {flip_flop = *} : bit[8];
  register addr2_high = base @ 4 : bit[8];
  variable address2 = addr2_high # addr2_low : int(16)
    serialized as { addr2_low; addr2_high };
  register cnt2_low = base @ 5, pre {flip_flop = *} : bit[8];
  register cnt2_high = base @ 5 : bit[8];
  variable count2 = cnt2_high # cnt2_low : int(16)
    serialized as { cnt2_low; cnt2_high };

  register addr3_low = base @ 6, pre {flip_flop = *} : bit[8];
  register addr3_high = base @ 6 : bit[8];
  variable address3 = addr3_high # addr3_low : int(16)
    serialized as { addr3_low; addr3_high };
  register cnt3_low = base @ 7, pre {flip_flop = *} : bit[8];
  register cnt3_high = base @ 7 : bit[8];
  variable count3 = cnt3_high # cnt3_low : int(16)
    serialized as { cnt3_low; cnt3_high };

  // Command (write) / status (read) at offset 8.
  register command_reg = write base @ 8, mask '00000.00' : bit[8];
  variable controller_enable = command_reg[2] : {
    CTRL_DISABLE => '1', CTRL_ENABLE => '0' };
  register status_reg = read base @ 8 : bit[8];
  structure dma_status = {
    variable terminal_count = status_reg[3..0], volatile : int(4);
    variable request_pending = status_reg[7..4], volatile : int(4);
  };

  // Request register.
  register request_reg = write base @ 9, mask '00000...' : bit[8];
  structure software_request = {
    variable req_channel = request_reg[1..0] : int(2);
    variable req_state = request_reg[2] : { REQ_SET => '1', REQ_RESET => '0' };
  };

  // Single-channel mask register.
  register single_mask_reg = write base @ 10, mask '00000...' : bit[8];
  structure channel_mask = {
    variable mask_channel = single_mask_reg[1..0] : int(2);
    variable mask_state = single_mask_reg[2] : {
      MASK_SET => '1', MASK_CLEAR => '0' };
  };

  // Mode register.
  register mode_reg = write base @ 11 : bit[8];
  structure channel_mode = {
    variable mode_channel = mode_reg[1..0] : int(2);
    variable transfer_type = mode_reg[3..2] : {
      VERIFY => '00', WRITE_MEM => '01', READ_MEM => '10', ILLEGAL_TT => '11' };
    variable auto_init = mode_reg[4] : bool;
    variable down = mode_reg[5] : bool;
    variable transfer_mode = mode_reg[7..6] : {
      DEMAND => '00', SINGLE => '01', BLOCK_MODE => '10', CASCADE => '11' };
  };

  // Master clear (any write resets the controller).
  register master_clear_reg = write base @ 13 : bit[8];
  variable master_clear = master_clear_reg, write trigger : int(8);

  // Clear mask register (any write unmasks all channels).
  register clear_mask_reg = write base @ 14 : bit[8];
  variable clear_all_masks = clear_mask_reg, write trigger : int(8);

  // Write-all-mask-bits register.
  register all_mask_reg = write base @ 15, mask '0000....' : bit[8];
  variable mask_bits = all_mask_reg[3..0] : int(4);
}
|}

(* {1 Intel 8259A interrupt controller} — the paper's control-flow
   serialization example (§2.2). The init structure is written through
   an order that depends on the configured values; ICW3's meaning is
   selected by the is_master configuration parameter. *)

let pic8259_source =
  {|
device pic8259 (base : bit[8] port @ {0..1}, is_master : bool)
{
  // Initialization mode marker: a memory cell distinguishing the ICW
  // sequence from OCW accesses on the shared ports.
  private variable init_mode : bool;

  // ICW1 is told apart from OCW2/OCW3 by bit 4 = 1.
  register icw1 = write base @ 0, mask '0001....', set {init_mode = true}
    : bit[8];
  register icw2 = write base @ 1, pre {init_mode = true}, mask '.....000'
    : bit[8];
  register icw4 = write base @ 1, pre {init_mode = true}, mask '000.....',
    set {init_mode = false} : bit[8];

  // ICW3 carries a cascade bit map on the master and the slave identity
  // on a slave; the whole initialization structure is selected by the
  // is_master configuration parameter.
  if (is_master == true) {
    register icw3 = write base @ 1, pre {init_mode = true} : bit[8];
    structure init = {
      variable ic4 = icw1[0] : bool;
      variable sngl = icw1[1] : { SINGLE => '1', CASCADED => '0' };
      variable adi = icw1[2] : bool;
      variable ltim = icw1[3] : { LEVEL => '1', EDGE => '0' };
      variable vector_base = icw2[7..3] : int(5);
      variable cascade_map = icw3 : int(8);
      variable microprocessor = icw4[0] : { X8086 => '1', MCS80_85 => '0' };
      variable auto_eoi = icw4[1] : bool;
      variable buffer_master = icw4[2] : bool;
      variable buffered = icw4[3] : bool;
      variable nested = icw4[4] : bool;
    } serialized as {
      icw1;
      icw2;
      if (sngl == CASCADED) icw3;
      if (ic4 == true) icw4;
    };
  } else {
    register icw3 = write base @ 1, pre {init_mode = true}, mask '00000...'
      : bit[8];
    structure init = {
      variable ic4 = icw1[0] : bool;
      variable sngl = icw1[1] : { SINGLE => '1', CASCADED => '0' };
      variable adi = icw1[2] : bool;
      variable ltim = icw1[3] : { LEVEL => '1', EDGE => '0' };
      variable vector_base = icw2[7..3] : int(5);
      variable slave_id = icw3[2..0] : int(3);
      variable microprocessor = icw4[0] : { X8086 => '1', MCS80_85 => '0' };
      variable auto_eoi = icw4[1] : bool;
      variable buffer_master = icw4[2] : bool;
      variable buffered = icw4[3] : bool;
      variable nested = icw4[4] : bool;
    } serialized as {
      icw1;
      icw2;
      if (sngl == CASCADED) icw3;
      if (ic4 == true) icw4;
    };
  }

  // OCW1: the interrupt mask register, freely read and written.
  register ocw1 = base @ 1, pre {init_mode = false} : bit[8];
  variable irq_mask = ocw1 : int(8);

  // OCW2: EOI and priority commands (bit 4 = 0, bit 3 = 0).
  register ocw2 = write base @ 0, mask '...00...' : bit[8];
  variable eoi_command = ocw2[7..5], write trigger except EOI_NOP : {
    NON_SPECIFIC_EOI => '001', SPECIFIC_EOI => '011',
    ROTATE_NON_SPECIFIC => '101', ROTATE_AUTO_SET => '100',
    ROTATE_AUTO_CLEAR => '000', ROTATE_SPECIFIC => '111',
    SET_PRIORITY => '110', EOI_NOP => '010' };
  variable eoi_level = ocw2[2..0] : int(3);

  // OCW3: read-register selection and special mask mode
  // (bit 4 = 0, bit 3 = 1 distinguish it from ICW1 and OCW2).
  register ocw3 = write base @ 0, mask '0..01...' : bit[8];
  variable read_select = ocw3[1..0] : {
    READ_NOP => '00', READ_IRR => '10', READ_ISR => '11' };
  variable poll_command = ocw3[2], write trigger for true : bool;
  variable special_mask = ocw3[6..5] : {
    SMM_NOP => '00', RESET_SMM => '10', SET_SMM => '11' };

  // Status reads at offset 0, addressed by the OCW3 read selection.
  register irr_reg = read base @ 0, pre {read_select = READ_IRR} : bit[8];
  variable irq_request = irr_reg, volatile : int(8);
  register isr_reg = read base @ 0, pre {read_select = READ_ISR} : bit[8];
  variable in_service = isr_reg, volatile : int(8);
}
|}

(* {1 Crystal CS4236B} — the paper's automata-based addressing example
   (§2.2): extended registers reached through the I23 state machine. *)

let cs4236b_source =
  {|
device cs4236b (base : bit[8] port @ {0..3})
{
  // Extended-mode marker: true while I23 acts as an extended data
  // register rather than an extended address register.
  private variable xm : bool;

  // Writing the control register always leaves extended mode.
  register control = base @ 0, set {xm = false} : bit[8];
  variable IA = control : int{0..31};

  // Indexed registers I0 - I31.
  register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];

  // I6/I7: DAC attenuation (bit 6 unused on this part).
  register I6 = I(6), mask '.-......';
  variable left_mute = I6[7] : bool;
  variable left_attenuation = I6[5..0] : int(6);
  register I7 = I(7), mask '.-......';
  variable right_mute = I7[7] : bool;
  variable right_attenuation = I7[5..0] : int(6);

  // I23: the gateway to the extended registers.
  register I23 = I(23), mask '......0.';
  variable ACF = I23[0] : bool;
  structure XS = {
    variable XA = I23[2,7..4] : int(5);
    variable XRAE = I23[3], set {xm = XRAE}, write trigger for true : bool;
  };

  // Extended registers X0-X17, X25.
  register X(j : int{0..17,25}) = base @ 1,
    pre {XS = {XA => j; XRAE => true}} : bit[8];

  register X2 = X(2);
  variable line_left_gain = X2[5..0] : int(6);
  variable line_left_mute = X2[7] : bool;
  variable line_left_boost = X2[6] : bool;
  register X25 = X(25);
  variable chip_version = X25, volatile : int(8);

  // WSS status and PCM data ports.
  register wss_status = read base @ 2 : bit[8];
  variable status_flags = wss_status, volatile : int(8);
  register ack_reg = write base @ 2 : bit[8];
  variable irq_ack = ack_reg, write trigger : int(8);
  register pcm_reg = base @ 3 : bit[8];
  variable pcm_data = pcm_reg, trigger, volatile, block : int(8);
}
|}

(* {1 3Dlabs Permedia2} — the memory-mapped 2D engine subset driven by
   the accelerated X11 server (fill rectangle and screen copy), plus the
   input FIFO flow control the driver's wait loops poll. *)

let permedia2_source =
  {|
device permedia2 (mmio : bit[32] port @ {0..10}, fb : bit[32] port @ {0})
{
  // Input FIFO: number of free entries (low 16 bits).
  register fifo_space = read mmio @ 0,
    mask '****************................' : bit[32];
  variable free_entries = fifo_space[15..0], volatile : int(16);

  // Block color used by fill operations.
  register color_reg = write mmio @ 1 : bit[32];
  variable fill_color = color_reg : int(32);

  // Rectangle position and size (packed x/y pairs). The fields are
  // independent parameters; grouping them in structures additionally
  // gives the driver one-transfer grouped stubs.
  register rect_pos_reg = write mmio @ 2 : bit[32];
  structure rect_position = {
    variable rect_y = rect_pos_reg[31..16] : int(16);
    variable rect_x = rect_pos_reg[15..0] : int(16);
  };
  register rect_size_reg = write mmio @ 3 : bit[32];
  structure rect_size = {
    variable rect_height = rect_size_reg[31..16] : int(16);
    variable rect_width = rect_size_reg[15..0] : int(16);
  };

  // Copy source offset (packed dx/dy, two's complement).
  register copy_offset_reg = write mmio @ 4 : bit[32];
  structure copy_vector = {
    variable copy_dy = copy_offset_reg[31..16] : signed int(16);
    variable copy_dx = copy_offset_reg[15..0] : signed int(16);
  };

  // Render command: kicks the engine.
  register render_reg = write mmio @ 5,
    mask '00000000000000000000000000000...' : bit[32];
  variable render_op = render_reg[1..0], write trigger except OP_NOP : {
    OP_NOP => '00', OP_FILL => '01', OP_COPY => '10' };
  variable render_sync = render_reg[2] : bool;

  // Framebuffer configuration: bits per pixel.
  register fb_depth_reg = write mmio @ 6,
    mask '00000000000000000000000000......' : bit[32];
  variable pixel_depth = fb_depth_reg[5..0] : int{8,16,24,32};

  // Engine status: bit 0 = busy.
  register engine_status = read mmio @ 7,
    mask '0000000000000000000000000000000.' : bit[32];
  variable engine_busy = engine_status[0], volatile : bool;

  // Per-operation raster state the server re-sends with every
  // primitive: clip rectangle, framebuffer window base, raster op.
  register scissor_reg = write mmio @ 8 : bit[32];
  variable clip_rect = scissor_reg : int(32);
  register window_base_reg = write mmio @ 9 : bit[32];
  variable window_base = window_base_reg : int(32);
  register logical_op_reg = write mmio @ 10,
    mask '0000000000000000000000000000....' : bit[32];
  variable raster_op = logical_op_reg[3..0] : int(4);

  // Direct framebuffer aperture (block transfers for software fills).
  register fb_port = fb @ 0 : bit[32];
  variable fb_data = fb_port, trigger, volatile, block : int(32);
}
|}

(* {1 16550 UART} — an extension beyond the paper's seven devices,
   exercising the same machinery: the DLAB bit of the line-control
   register overlays the divisor latch on the data/interrupt registers,
   expressed with disjoint pre-actions. *)

let uart16550_source =
  {|
device uart16550 (base : bit[8] port @ {0..7})
{
  // Line control; bit 7 (DLAB) selects the divisor-latch overlay.
  register lcr = base @ 3 : bit[8];
  private variable dlab = lcr[7] : {
    DIVISOR_ACCESS <=> '1', NORMAL_ACCESS <=> '0' };
  variable word_length = lcr[1..0] : {
    BITS5 <=> '00', BITS6 <=> '01', BITS7 <=> '10', BITS8 <=> '11' };
  variable two_stop_bits = lcr[2] : bool;
  variable parity_mode = lcr[5..3] : int(3);
  variable break_control = lcr[6] : bool;

  // Receive / transmit data (DLAB = 0); reads pop the FIFO.
  register rbr = read base @ 0, pre {dlab = NORMAL_ACCESS} : bit[8];
  variable rx_data = rbr, read trigger, volatile, block : int(8);
  register thr = write base @ 0, pre {dlab = NORMAL_ACCESS} : bit[8];
  variable tx_data = thr, write trigger, block : int(8);

  // Divisor latch (DLAB = 1), a 16-bit value over two ports.
  register dll = base @ 0, pre {dlab = DIVISOR_ACCESS} : bit[8];
  register dlm = base @ 1, pre {dlab = DIVISOR_ACCESS} : bit[8];
  variable divisor = dlm # dll : int(16) serialized as { dll; dlm };

  // Interrupt enable (DLAB = 0).
  register ier = base @ 1, pre {dlab = NORMAL_ACCESS}, mask '0000....'
    : bit[8];
  variable irq_rx_available = ier[0] : bool;
  variable irq_tx_empty = ier[1] : bool;
  variable irq_line_status = ier[2] : bool;
  variable irq_modem_status = ier[3] : bool;

  // Interrupt identification (read) / FIFO control (write).
  register iir = read base @ 2, mask '..**....' : bit[8];
  variable irq_id = iir[3..0], volatile : int(4);
  variable fifo_status = iir[7..6], volatile : int(2);
  register fcr = write base @ 2, mask '..00....' : bit[8];
  variable fifo_enable = fcr[0] : bool;
  variable rx_fifo_reset = fcr[1], write trigger for true : bool;
  variable tx_fifo_reset = fcr[2], write trigger for true : bool;
  variable dma_mode = fcr[3] : bool;
  variable rx_trigger_level = fcr[7..6] : int(2);

  // Modem control.
  register mcr = base @ 4, mask '000.....' : bit[8];
  variable dtr = mcr[0] : bool;
  variable rts = mcr[1] : bool;
  variable out1 = mcr[2] : bool;
  variable out2 = mcr[3] : bool;
  variable loopback = mcr[4] : bool;

  // Line status.
  register lsr = read base @ 5 : bit[8];
  structure line_status = {
    variable data_ready = lsr[0], volatile : bool;
    variable overrun_error = lsr[1], volatile : bool;
    variable parity_error = lsr[2], volatile : bool;
    variable framing_error = lsr[3], volatile : bool;
    variable break_interrupt = lsr[4], volatile : bool;
    variable thr_empty = lsr[5], volatile : bool;
    variable transmitter_idle = lsr[6], volatile : bool;
    variable rx_fifo_error = lsr[7], volatile : bool;
  };

  // Modem status and the scratch register.
  register msr = read base @ 6 : bit[8];
  variable modem_status = msr, volatile : int(8);
  register scratch_reg = base @ 7 : bit[8];
  variable scratch = scratch_reg : int(8);
}
|}

(* {1 MC146818 RTC} — a second extension device: the classic
   index/data pair at ports 0x70/0x71, a parameterized register over
   the index pre-action, and a read-clears status register. *)

let mc146818_source =
  {|
device mc146818 (idx : bit[8] port @ {0}, data : bit[8] port @ {0})
{
  // NMI-disable lives in bit 7; the CMOS index in bits 6..0.
  register index_reg = write idx, mask '0.......' : bit[8];
  private variable index = index_reg[6..0] : int(7);

  // The indexed CMOS/RTC register window.
  register R(i : int{0..13}) = data, pre {index = i} : bit[8];

  register seconds_reg = R(0);
  variable seconds = seconds_reg, volatile : int(8);
  register seconds_alarm_reg = R(1);
  variable seconds_alarm = seconds_alarm_reg : int(8);
  register minutes_reg = R(2);
  variable minutes = minutes_reg, volatile : int(8);
  register minutes_alarm_reg = R(3);
  variable minutes_alarm = minutes_alarm_reg : int(8);
  register hours_reg = R(4);
  variable hours = hours_reg, volatile : int(8);
  register hours_alarm_reg = R(5);
  variable hours_alarm = hours_alarm_reg : int(8);
  register weekday_reg = R(6);
  variable weekday = weekday_reg, volatile : int(8);
  register day_reg = R(7);
  variable day = day_reg, volatile : int(8);
  register month_reg = R(8);
  variable month = month_reg, volatile : int(8);
  register year_reg = R(9);
  variable year = year_reg, volatile : int(8);

  // Status A: bit 7 = update in progress (read-only), rate selection.
  register status_a = R(10), mask '.0......';
  variable update_in_progress = status_a[7], volatile : bool;
  variable divider = status_a[5..4] : int(2);
  variable rate = status_a[3..0] : int(4);

  // Status B: update control and format bits.
  register status_b = R(11);
  variable set_mode = status_b[7] : { HALT_UPDATES => '1', RUN => '0',
                                      HALTED <= '1', RUNNING <= '0' };
  variable periodic_irq = status_b[6] : bool;
  variable alarm_irq = status_b[5] : bool;
  variable update_irq = status_b[4] : bool;
  variable square_wave = status_b[3] : bool;
  variable binary_mode = status_b[2] : { BINARY <=> '1', BCD <=> '0' };
  variable format_24h = status_b[1] : bool;
  variable daylight_saving = status_b[0] : bool;

  // Status C: interrupt flags; the read acknowledges them.
  register status_c = R(12), mask '....0000';
  variable irq_flags = status_c[7..4], read trigger, volatile : int(4);

  // Status D: bit 7 = battery/data valid.
  register status_d = R(13), mask '.0000000';
  variable data_valid = status_d[7], volatile : bool;
}
|}


(* {1 i8042 keyboard controller} — a third extension device: the
   command/data pair at 0x64/0x60, a write-triggered command register
   and a volatile status structure. *)

let i8042_source =
  {|
device i8042 (data : bit[8] port @ {0}, ctl : bit[8] port @ {0})
{
  // Status register (read side of 0x64).
  register status_reg = read ctl : bit[8];
  structure kbd_status = {
    variable output_full = status_reg[0], volatile : bool;
    variable input_full = status_reg[1], volatile : bool;
    variable system_flag = status_reg[2], volatile : bool;
    variable command_last = status_reg[3], volatile : bool;
    variable keylock_open = status_reg[4], volatile : bool;
    variable aux_full = status_reg[5], volatile : bool;
    variable timeout_error = status_reg[6], volatile : bool;
    variable parity_error = status_reg[7], volatile : bool;
  };

  // Controller command register (write side of 0x64).
  register command_reg = write ctl : bit[8];
  variable controller_command = command_reg, write trigger : {
    READ_CONFIG => '00100000', WRITE_CONFIG => '01100000',
    SELF_TEST => '10101010', IFACE_TEST => '10101011',
    DISABLE_KBD => '10101101', ENABLE_KBD => '10101110' };

  // Data port (0x60): scancodes and command parameters/responses.
  register data_reg = data : bit[8];
  variable kbd_data = data_reg, trigger, volatile : int(8);
}
|}

let all =
  [
    ("logitech_busmouse", busmouse_source);
    ("ne2000", ne2000_source);
    ("ide", ide_source);
    ("piix4_ide", piix4_ide_source);
    ("dma8237", dma8237_source);
    ("pic8259", pic8259_source);
    ("cs4236b", cs4236b_source);
    ("permedia2", permedia2_source);
    ("uart16550", uart16550_source);
    ("mc146818", mc146818_source);
    ("i8042", i8042_source);
  ]

let compile_exn ?config ~name src =
  match Check.compile ?config ~file:(name ^ ".dil") src with
  | Ok device -> device
  | Error diags ->
      failwith
        (Format.asprintf "specification %s failed verification:@.%a" name
           Diagnostics.pp diags)

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
        let v = f () in
        cache := Some v;
        v

let busmouse =
  memo (fun () -> compile_exn ~name:"logitech_busmouse" busmouse_source)

let ne2000 = memo (fun () -> compile_exn ~name:"ne2000" ne2000_source)
let ide = memo (fun () -> compile_exn ~name:"ide" ide_source)

let piix4_ide =
  memo (fun () -> compile_exn ~name:"piix4_ide" piix4_ide_source)

let dma8237 = memo (fun () -> compile_exn ~name:"dma8237" dma8237_source)

let pic_master =
  memo (fun () ->
      compile_exn
        ~config:[ ("is_master", Value.Bool true) ]
        ~name:"pic8259" pic8259_source)

let pic_slave =
  memo (fun () ->
      compile_exn
        ~config:[ ("is_master", Value.Bool false) ]
        ~name:"pic8259" pic8259_source)

let pic8259 ?(master = true) () =
  if master then pic_master () else pic_slave ()

let cs4236b = memo (fun () -> compile_exn ~name:"cs4236b" cs4236b_source)
let uart16550 = memo (fun () -> compile_exn ~name:"uart16550" uart16550_source)
let mc146818 = memo (fun () -> compile_exn ~name:"mc146818" mc146818_source)
let i8042 = memo (fun () -> compile_exn ~name:"i8042" i8042_source)
let permedia2 = memo (fun () -> compile_exn ~name:"permedia2" permedia2_source)
