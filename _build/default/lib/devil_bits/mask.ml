type bit_class = Covered | Forced of bool | Irrelevant

type t = { bits : bit_class array }
(* [bits.(i)] classifies bit [i]; index 0 is the least significant bit,
   i.e. the rightmost character of the mask text. *)

let width t = Array.length t.bits

let all_covered w =
  if w <= 0 then invalid_arg "Mask.all_covered"
  else { bits = Array.make w Covered }

let class_of_char = function
  | '.' -> Ok Covered
  | '0' -> Ok (Forced false)
  | '1' -> Ok (Forced true)
  | '*' | '-' -> Ok Irrelevant
  | c -> Error c

let of_string ~width text =
  let n = String.length text in
  if n <> width then
    Error
      (Printf.sprintf "mask '%s' has %d bits but the register has %d" text n
         width)
  else
    let bits = Array.make n Irrelevant in
    let rec fill i =
      if i >= n then Ok { bits }
      else
        match class_of_char text.[i] with
        | Ok c ->
            (* Character [i] (from the left) describes bit [n - 1 - i]. *)
            bits.(n - 1 - i) <- c;
            fill (i + 1)
        | Error c ->
            Error (Printf.sprintf "invalid mask character %C in '%s'" c text)
    in
    fill 0

let of_string_exn ~width text =
  match of_string ~width text with
  | Ok m -> m
  | Error msg -> invalid_arg ("Mask.of_string_exn: " ^ msg)

let bit t i =
  if i < 0 || i >= width t then invalid_arg "Mask.bit" else t.bits.(i)

let covered_bits t =
  let acc = ref [] in
  for i = width t - 1 downto 0 do
    match t.bits.(i) with
    | Covered -> acc := i :: !acc
    | Forced _ | Irrelevant -> ()
  done;
  !acc

let forced_value t =
  let v = ref 0 in
  Array.iteri
    (fun i c -> match c with Forced true -> v := !v lor (1 lsl i)
                           | Forced false | Covered | Irrelevant -> ())
    t.bits;
  !v

let forced_positions t =
  let v = ref 0 in
  Array.iteri
    (fun i c -> match c with Forced _ -> v := !v lor (1 lsl i)
                           | Covered | Irrelevant -> ())
    t.bits;
  !v

let writable_frame t ~value =
  let covered = ref 0 in
  Array.iteri
    (fun i c -> match c with Covered -> covered := !covered lor (1 lsl i)
                           | Forced _ | Irrelevant -> ())
    t.bits;
  value land !covered lor forced_value t

let char_of_class = function
  | Covered -> '.'
  | Forced false -> '0'
  | Forced true -> '1'
  | Irrelevant -> '*'

let to_string t =
  String.init (width t) (fun i -> char_of_class t.bits.(width t - 1 - i))

let pp fmt t = Format.fprintf fmt "'%s'" (to_string t)
let equal a b = a.bits = b.bits
