(** Bit patterns of enumerated-type cases.

    An enum case associates a symbolic name with a bit pattern, e.g.
    [ENABLE => '0']. Patterns consist of ['0'], ['1'] and ['*']
    (wildcard); wildcards are only meaningful for read mappings, where
    several concrete values may map to the same symbol. *)

type t

val of_string : string -> (t, string) result
(** Parses pattern text (without quotes); leftmost character is the most
    significant bit. *)

val of_string_exn : string -> t

val width : t -> int

val is_exact : t -> bool
(** True when the pattern contains no wildcard. *)

val value : t -> int option
(** The concrete value of an exact pattern. *)

val matches : t -> int -> bool
(** [matches p v] holds when [v] agrees with every non-wildcard bit. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val overlap : t -> t -> bool
(** Two patterns overlap when some concrete value matches both; used by
    the double-definition check on enumerated types. *)
