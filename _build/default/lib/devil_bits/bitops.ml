let width_mask w =
  if w < 0 || w > 56 then invalid_arg "Bitops.width_mask"
  else (1 lsl w) - 1

let fits ~width v = v >= 0 && v land lnot (width_mask width) = 0

let extract ~hi ~lo v =
  if hi < lo || lo < 0 then invalid_arg "Bitops.extract"
  else (v lsr lo) land width_mask (hi - lo + 1)

let insert ~hi ~lo ~field v =
  if hi < lo || lo < 0 then invalid_arg "Bitops.insert"
  else
    let m = width_mask (hi - lo + 1) in
    v land lnot (m lsl lo) lor ((field land m) lsl lo)

let get_bit v ~pos = (v lsr pos) land 1 = 1

let set_bit v ~pos b =
  if b then v lor (1 lsl pos) else v land lnot (1 lsl pos)

let sign_extend ~width v =
  let v = v land width_mask width in
  if get_bit v ~pos:(width - 1) then v - (1 lsl width) else v

let to_unsigned ~width v = v land width_mask width

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let pp_binary ~width fmt v =
  for i = width - 1 downto 0 do
    Format.pp_print_char fmt (if get_bit v ~pos:i then '1' else '0')
  done
