type elt = P0 | P1 | Pwild

type t = { elts : elt array }
(* [elts.(i)] constrains bit [i]; index 0 is the least significant bit. *)

let of_string text =
  let n = String.length text in
  if n = 0 then Error "empty bit pattern"
  else
    let elts = Array.make n Pwild in
    let rec fill i =
      if i >= n then Ok { elts }
      else
        match text.[i] with
        | '0' ->
            elts.(n - 1 - i) <- P0;
            fill (i + 1)
        | '1' ->
            elts.(n - 1 - i) <- P1;
            fill (i + 1)
        | '*' | '.' | '-' ->
            elts.(n - 1 - i) <- Pwild;
            fill (i + 1)
        | c -> Error (Printf.sprintf "invalid pattern character %C" c)
    in
    fill 0

let of_string_exn text =
  match of_string text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Bitpat.of_string_exn: " ^ msg)

let width t = Array.length t.elts

let is_exact t =
  Array.for_all (function P0 | P1 -> true | Pwild -> false) t.elts

let value t =
  if not (is_exact t) then None
  else
    Some
      (Array.to_list t.elts
      |> List.mapi (fun i e -> match e with P1 -> 1 lsl i | P0 | Pwild -> 0)
      |> List.fold_left ( lor ) 0)

let matches t v =
  let ok = ref true in
  Array.iteri
    (fun i e ->
      let bit = (v lsr i) land 1 in
      match e with
      | P0 when bit <> 0 -> ok := false
      | P1 when bit <> 1 -> ok := false
      | P0 | P1 | Pwild -> ())
    t.elts;
  !ok && v lsr width t = 0

let char_of_elt = function P0 -> '0' | P1 -> '1' | Pwild -> '*'

let to_string t =
  String.init (width t) (fun i -> char_of_elt t.elts.(width t - 1 - i))

let pp fmt t = Format.fprintf fmt "'%s'" (to_string t)
let equal a b = a.elts = b.elts

let overlap a b =
  width a = width b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | P0, P1 | P1, P0 -> false
         | (P0 | P1 | Pwild), (P0 | P1 | Pwild) -> true)
       a.elts b.elts
