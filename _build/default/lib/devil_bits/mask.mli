(** Register masks.

    A Devil register mask is written as a bit literal whose leftmost
    character describes the most significant bit:

    - ['.'] — a bit available for device-variable definitions; the
      "no omission" check requires every such bit to be covered;
    - ['0'] / ['1'] — a bit that is irrelevant when read but must be
      written with the given fixed value;
    - ['*'] or ['-'] — an irrelevant bit (ignored when read, written as
      zero, and exempt from the coverage requirement). *)

type bit_class =
  | Covered  (** ['.'] *)
  | Forced of bool  (** ['0'] or ['1'] *)
  | Irrelevant  (** ['*'] or ['-'] *)

type t

val width : t -> int

val all_covered : int -> t
(** The default mask for a register declared without one. *)

val of_string : width:int -> string -> (t, string) result
(** Parses mask text (without the surrounding quotes). Fails when the
    text length differs from [width] or contains an invalid character. *)

val of_string_exn : width:int -> string -> t

val bit : t -> int -> bit_class
(** [bit m i] classifies bit [i] (0 = least significant).
    Raises [Invalid_argument] when out of range. *)

val covered_bits : t -> int list
(** Positions of ['.'] bits, ascending. *)

val forced_value : t -> int
(** Value contributed by the forced bits (['1'] bits set). *)

val forced_positions : t -> int
(** Bit set marking positions that carry a forced value. *)

val writable_frame : t -> value:int -> int
(** [writable_frame m ~value] combines a value for the covered bits with
    the forced bits and zeroes for irrelevant bits: the paper's "proper
    register masking performed as part of the stubs". *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
