lib/devil_bits/bitpat.ml: Array Format List Printf String
