lib/devil_bits/bitops.ml: Format
