lib/devil_bits/bitpat.mli: Format
