lib/devil_bits/mask.ml: Array Format Printf String
