lib/devil_bits/mask.mli: Format
