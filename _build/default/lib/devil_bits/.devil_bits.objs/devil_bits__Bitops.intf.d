lib/devil_bits/bitops.mli: Format
