(** Bit-level operations on register values.

    Register values are represented as non-negative OCaml [int]s;
    registers are at most 32 bits wide, so the native 63-bit integer is
    always sufficient. Bit 0 is the least significant bit. *)

val width_mask : int -> int
(** [width_mask w] is [2^w - 1]. Raises [Invalid_argument] unless
    [0 <= w <= 56]. *)

val fits : width:int -> int -> bool
(** [fits ~width v] holds when [0 <= v < 2^width]. *)

val extract : hi:int -> lo:int -> int -> int
(** [extract ~hi ~lo v] is bits [hi..lo] of [v], shifted down to bit 0.
    Requires [hi >= lo >= 0]. *)

val insert : hi:int -> lo:int -> field:int -> int -> int
(** [insert ~hi ~lo ~field v] replaces bits [hi..lo] of [v] with the low
    bits of [field]. Bits of [field] above the range width are ignored. *)

val get_bit : int -> pos:int -> bool
val set_bit : int -> pos:int -> bool -> int

val sign_extend : width:int -> int -> int
(** Interprets the low [width] bits as a two's-complement value. *)

val to_unsigned : width:int -> int -> int
(** Inverse of {!sign_extend}: encodes a (possibly negative) value into
    its low-[width]-bits two's complement representation. *)

val popcount : int -> int

val pp_binary : width:int -> Format.formatter -> int -> unit
(** Prints exactly [width] binary digits, most significant first. *)
