module Machine = Drivers.Machine
module Gfx = Drivers.Gfx

type primitive = Fill | Copy

type cell = {
  depth : int;
  size : int;
  std_ops_per_prim : float;
  devil_ops_per_prim : float;
  std_rate : float;
  devil_rate : float;
  ratio : float;
}

(* Batch sizes: enough primitives to fill the FIFO and reach the
   steady state the xbench loop measures, small enough to keep large
   rectangles fast. *)
let batch_for size = if size >= 400 then 40 else if size >= 100 then 100 else 400

let run_one prim ~depth ~size ~driver =
  let m = Machine.create () in
  let batch = batch_for size in
  let issue =
    match driver with
    | `Standard ->
        let d = Gfx.Handcrafted.create m.bus ~mmio_base:Machine.gfx_mmio_base in
        Gfx.Handcrafted.set_depth d depth;
        fun i ->
          let r =
            { Gfx.x = (i * 7) mod 256; y = (i * 13) mod 256; w = size; h = size }
          in
          (match prim with
          | Fill -> Gfx.Handcrafted.fill_rect d r ~color:(i land 0xff)
          | Copy -> Gfx.Handcrafted.copy_rect d r ~dx:8 ~dy:8)
    | `Devil ->
        let d = Gfx.Devil_driver.create m.gfx_dev in
        Gfx.Devil_driver.set_depth d depth;
        fun i ->
          let r =
            { Gfx.x = (i * 7) mod 256; y = (i * 13) mod 256; w = size; h = size }
          in
          (match prim with
          | Fill -> Gfx.Devil_driver.fill_rect d r ~color:(i land 0xff)
          | Copy -> Gfx.Devil_driver.copy_rect d r ~dx:8 ~dy:8)
  in
  (* Warm up: get the FIFO to its steady state before measuring. *)
  for i = 0 to 7 do
    issue i
  done;
  Machine.reset_io_stats m;
  for i = 0 to batch - 1 do
    issue i
  done;
  let stats = Machine.stats m in
  let ops = Machine.io_ops m in
  if Hwsim.Permedia2.overflows m.gfx > 0 then
    failwith "permedia bench: FIFO overflow (driver bug)";
  (* PCI timing: reads stall for the round trip, writes are posted. *)
  let seconds =
    (float_of_int stats.Hwsim.Io_space.reads *. Cost.t_gfx_read)
    +. (float_of_int stats.Hwsim.Io_space.writes *. Cost.t_gfx_write)
  in
  ( float_of_int ops /. float_of_int batch,
    float_of_int batch /. seconds )

let run_cell prim ~depth ~size =
  let std_ops_per_prim, std_rate = run_one prim ~depth ~size ~driver:`Standard in
  let devil_ops_per_prim, devil_rate = run_one prim ~depth ~size ~driver:`Devil in
  {
    depth;
    size;
    std_ops_per_prim;
    devil_ops_per_prim;
    std_rate;
    devil_rate;
    ratio = devil_rate /. std_rate;
  }

let table prim =
  List.concat_map
    (fun depth ->
      List.map (fun size -> run_cell prim ~depth ~size) [ 2; 10; 100; 400 ])
    [ 8; 16; 24; 32 ]

let pp_table fmt cells =
  Format.fprintf fmt
    "bpp  size    | std ops/prim  prim/s    | devil ops/prim  prim/s    | ratio@.";
  List.iter
    (fun c ->
      Format.fprintf fmt
        "%3d  %3dx%-3d | %12.1f %9.0f | %14.1f %9.0f | %4.0f %%@." c.depth
        c.size c.size c.std_ops_per_prim c.std_rate c.devil_ops_per_prim
        c.devil_rate (100.0 *. c.ratio))
    cells
