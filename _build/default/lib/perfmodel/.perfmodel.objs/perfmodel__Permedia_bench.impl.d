lib/perfmodel/permedia_bench.ml: Cost Drivers Format Hwsim List
