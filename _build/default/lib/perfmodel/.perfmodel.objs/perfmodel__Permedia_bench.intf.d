lib/perfmodel/permedia_bench.mli: Format
