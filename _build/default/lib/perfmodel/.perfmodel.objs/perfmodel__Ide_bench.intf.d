lib/perfmodel/ide_bench.mli: Drivers Format
