lib/perfmodel/cost.mli:
