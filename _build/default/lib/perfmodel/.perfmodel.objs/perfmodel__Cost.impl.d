lib/perfmodel/cost.ml:
