lib/perfmodel/ide_bench.ml: Bytes Char Cost Drivers Format Hwsim List
