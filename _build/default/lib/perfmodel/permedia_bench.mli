(** Reproduction of Tables 3 and 4: Permedia2 Xfree86 driver
    throughput for the two hardware-accelerated primitives.

    For each display depth (8/16/24/32 bpp) and primitive size
    (2x2, 10x10, 100x100, 400x400 pixels) the harness issues a batch
    of primitives xbench-style through the hand-crafted and the
    Devil-based driver, reads the elapsed simulator ticks (one tick
    per bus access; the engine drains the FIFO on that clock) and
    reports primitives/second plus the ratio. *)

type primitive = Fill | Copy

type cell = {
  depth : int;
  size : int;  (** square edge in pixels *)
  std_ops_per_prim : float;
  devil_ops_per_prim : float;
  std_rate : float;  (** primitives per second *)
  devil_rate : float;
  ratio : float;
}

val run_cell : primitive -> depth:int -> size:int -> cell

val table : primitive -> cell list
(** All 16 cells of Table 3 ([Fill]) or Table 4 ([Copy]). *)

val pp_table : Format.formatter -> cell list -> unit
