module Machine = Drivers.Machine
module Ide = Drivers.Ide
module Io_space = Hwsim.Io_space

type mode = Dma | Pio of { sectors_per_irq : int; width : Ide.io_width }

type measurement = {
  io_ops : int;
  singles : int;
  block_items : int;
  irqs : int;
  seconds : float;
  throughput_mb_s : float;
}

type line = {
  mode : mode;
  standard : measurement;
  devil : measurement;
  ratio : float;
}

let sector_bytes = 512

(* Fill the first [sectors] LBAs with a recognizable pattern and verify
   what the driver read — the benchmark doubles as an integrity test. *)
let prepare_disk (m : Machine.t) ~sectors =
  for lba = 0 to sectors - 1 do
    let b =
      Bytes.init sector_bytes (fun i -> Char.chr ((lba + i) land 0xff))
    in
    Hwsim.Ide_disk.write_sector m.disk ~lba b
  done

let verify ~sectors data =
  for lba = 0 to sectors - 1 do
    for i = 0 to sector_bytes - 1 do
      let expected = Char.chr ((lba + i) land 0xff) in
      if Bytes.get data ((lba * sector_bytes) + i) <> expected then
        failwith "ide bench: data corruption detected"
    done
  done

let measure (m : Machine.t) ~mode ~bytes f =
  Machine.reset_io_stats m;
  Hwsim.Ide_disk.reset_irq_count m.disk;
  f ();
  let stats = Machine.stats m in
  let singles = stats.Io_space.reads + stats.Io_space.writes in
  let block_items = stats.Io_space.block_items in
  let irqs = Hwsim.Ide_disk.irq_count m.disk in
  let sample = { Cost.singles; block_items; irqs } in
  let seconds =
    match mode with
    | Dma -> Cost.dma_time sample ~bytes
    | Pio _ -> Cost.pio_time sample
  in
  {
    io_ops = singles + block_items;
    singles;
    block_items;
    irqs;
    seconds;
    throughput_mb_s = float_of_int bytes /. seconds /. 1.0e6;
  }

let run_line ?(sectors = 64) mode ~devil_path =
  let bytes = sectors * sector_bytes in
  let run_one driver =
    let m = Machine.create () in
    prepare_disk m ~sectors;
    (match mode with
    | Dma -> ()
    | Pio { sectors_per_irq; _ } ->
        Hwsim.Ide_disk.set_multiple m.disk sectors_per_irq);
    let hc =
      Ide.Handcrafted.create m.bus ~cmd_base:Machine.ide_base
        ~ctrl_base:Machine.ide_ctrl_base ~bm_base:Machine.piix4_base
        ~prd_base:Machine.piix4_prd_base
    in
    let dd = Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
    measure m ~mode ~bytes (fun () ->
        let data =
          match (driver, mode) with
          | `Standard, Dma ->
              Ide.Handcrafted.read_dma hc
                ~memory:(Hwsim.Piix4.memory m.busmaster)
                ~lba:0 ~count:sectors
          | `Devil, Dma ->
              Ide.Devil_driver.read_dma dd
                ~memory:(Hwsim.Piix4.memory m.busmaster)
                ~lba:0 ~count:sectors
          | `Standard, Pio { sectors_per_irq; width } ->
              Ide.Handcrafted.read_sectors hc ~lba:0 ~count:sectors
                ~mult:sectors_per_irq ~path:`Block ~width
          | `Devil, Pio { sectors_per_irq; width } ->
              Ide.Devil_driver.read_sectors dd ~lba:0 ~count:sectors
                ~mult:sectors_per_irq ~path:devil_path ~width
        in
        verify ~sectors data)
  in
  let standard = run_one `Standard in
  let devil = run_one `Devil in
  {
    mode;
    standard;
    devil;
    ratio = devil.throughput_mb_s /. standard.throughput_mb_s;
  }

let pio_modes =
  [
    Pio { sectors_per_irq = 16; width = `W32 };
    Pio { sectors_per_irq = 16; width = `W16 };
    Pio { sectors_per_irq = 8; width = `W32 };
    Pio { sectors_per_irq = 8; width = `W16 };
    Pio { sectors_per_irq = 1; width = `W32 };
    Pio { sectors_per_irq = 1; width = `W16 };
  ]

let table2 ?sectors () =
  run_line ?sectors Dma ~devil_path:`Loop
  :: List.map (fun mode -> run_line ?sectors mode ~devil_path:`Loop) pio_modes

let block_stub_lines ?sectors () =
  List.map (fun mode -> run_line ?sectors mode ~devil_path:`Block) pio_modes

let pp_mode fmt = function
  | Dma -> Format.fprintf fmt "DMA    -        -"
  | Pio { sectors_per_irq; width } ->
      Format.fprintf fmt "PIO   %2d       %2d" sectors_per_irq
        (match width with `W16 -> 16 | `W32 -> 32)

let pp_table fmt lines =
  Format.fprintf fmt
    "Mode  s/irq  io-bits | std ops  irqs  MB/s   | devil ops irqs  MB/s   | ratio@.";
  List.iter
    (fun l ->
      Format.fprintf fmt
        "%a | %7d %5d %6.2f | %8d %5d %6.2f | %4.0f %%@." pp_mode l.mode
        l.standard.io_ops l.standard.irqs l.standard.throughput_mb_s
        l.devil.io_ops l.devil.irqs l.devil.throughput_mb_s (100.0 *. l.ratio))
    lines
