(** Reproduction of Table 2: comparative IDE driver throughput.

    For every row of the paper's matrix — DMA, and PIO at 16/8/1
    sectors per interrupt with 16- or 32-bit I/O — the harness runs a
    sequential read through the hand-crafted driver (rep-style block
    transfers, like the original Linux driver) and through the
    Devil-based driver (per-word C loops over the generated stubs),
    counts the real I/O operations and interrupts the simulator saw,
    and converts them to throughput with {!Cost}.

    A second section measures the Devil driver with its block-transfer
    stubs, reproducing the paper's observation that the penalty
    disappears. *)

type mode =
  | Dma
  | Pio of { sectors_per_irq : int; width : Drivers.Ide.io_width }

type measurement = {
  io_ops : int;
  singles : int;
  block_items : int;
  irqs : int;
  seconds : float;
  throughput_mb_s : float;
}

type line = {
  mode : mode;
  standard : measurement;
  devil : measurement;
  ratio : float;  (** devil / standard throughput *)
}

val run_line :
  ?sectors:int -> mode -> devil_path:Drivers.Ide.data_path -> line
(** [sectors] defaults to 64. *)

val table2 : ?sectors:int -> unit -> line list
(** The paper's seven rows (Devil driver using C loops in PIO). *)

val block_stub_lines : ?sectors:int -> unit -> line list
(** PIO rows with the Devil driver using block stubs (§4.3). *)

val pp_mode : Format.formatter -> mode -> unit
val pp_table : Format.formatter -> line list -> unit
