(** Recursive-descent parser for Devil.

    Produces the surface AST of {!Ast}. Syntax errors raise
    {!Diagnostics.Error}; an exception-free entry point is provided for
    the mutation engine. *)

val parse_device : ?file:string -> string -> Ast.device
(** Parses a complete [device ... { ... }] specification. *)

val parse_device_result :
  ?file:string -> string -> (Ast.device, Diagnostics.item) result

val parse_tokens : Token.loc_token list -> Ast.device
(** Parses a pre-lexed token stream (must end with [EOF]). *)
