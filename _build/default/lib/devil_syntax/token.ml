type keyword =
  | Kdevice
  | Kregister
  | Kvariable
  | Kstructure
  | Kprivate
  | Kread
  | Kwrite
  | Kmask
  | Kpre
  | Kpost
  | Kset
  | Kvolatile
  | Ktrigger
  | Kexcept
  | Kfor
  | Kblock
  | Kserialized
  | Kas
  | Kif
  | Kelse
  | Kint
  | Ksigned
  | Kbool
  | Kport
  | Kbit
  | Ktrue
  | Kfalse

type t =
  | IDENT of string
  | UIDENT of string
  | INT of int
  | BITLIT of string
  | KW of keyword
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | AT
  | COLON
  | SEMI
  | COMMA
  | HASH
  | EQ
  | EQEQ
  | NEQ
  | MAPSTO
  | MAPSFROM
  | MAPSBOTH
  | DOTDOT
  | STAR
  | EOF

type loc_token = { token : t; loc : Loc.t; text : string }

let keywords =
  [
    ("device", Kdevice);
    ("register", Kregister);
    ("variable", Kvariable);
    ("structure", Kstructure);
    ("private", Kprivate);
    ("read", Kread);
    ("write", Kwrite);
    ("mask", Kmask);
    ("pre", Kpre);
    ("post", Kpost);
    ("set", Kset);
    ("volatile", Kvolatile);
    ("trigger", Ktrigger);
    ("except", Kexcept);
    ("for", Kfor);
    ("block", Kblock);
    ("serialized", Kserialized);
    ("as", Kas);
    ("if", Kif);
    ("else", Kelse);
    ("int", Kint);
    ("signed", Ksigned);
    ("bool", Kbool);
    ("port", Kport);
    ("bit", Kbit);
    ("true", Ktrue);
    ("false", Kfalse);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let string_of_keyword k =
  (* The keyword table is a bijection, so the reverse lookup always finds. *)
  fst (List.find (fun (_, k') -> k' = k) keywords)

let to_string = function
  | IDENT s | UIDENT s -> s
  | INT n -> string_of_int n
  | BITLIT s -> "'" ^ s ^ "'"
  | KW k -> string_of_keyword k
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | AT -> "@"
  | COLON -> ":"
  | SEMI -> ";"
  | COMMA -> ","
  | HASH -> "#"
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | MAPSTO -> "=>"
  | MAPSFROM -> "<="
  | MAPSBOTH -> "<=>"
  | DOTDOT -> ".."
  | STAR -> "*"
  | EOF -> "<eof>"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) (b : t) = a = b
