(** Surface abstract syntax of Devil specifications.

    The grammar follows the OSDI 2000 paper: a device declaration
    parameterized by ranged ports, containing register, variable and
    structure declarations, with masks, pre/set/post actions,
    parameterized registers, behaviours and serialization clauses. *)

type ident = { name : string; loc : Loc.t }

(** {1 Integer sets}

    [int{0..31}], [int{0..17,25}]: unions of inclusive ranges and
    singletons, as used for ranged types and register parameters. *)

type int_set_item = Single of int | Range of int * int
type int_set = { items : int_set_item list; set_loc : Loc.t }

(** {1 Types} *)

type enum_dir =
  | Dir_read  (** [<=]: value legible when reading *)
  | Dir_write  (** [=>]: value writable *)
  | Dir_both  (** [<=>] *)

type enum_case = {
  case_name : ident;
  dir : enum_dir;
  pattern : string;  (** bit literal text; may contain '*' wildcards *)
  pattern_loc : Loc.t;
}

type dtype =
  | T_bool
  | T_int of { signed : bool; bits : int }
  | T_int_set of int_set
  | T_enum of enum_case list

type dtype_loc = { ty : dtype; ty_loc : Loc.t }

(** {1 Actions}

    Actions appear in [pre { ... }], [post { ... }] and [set { ... }]
    clauses. An assignment target is a (private) variable or structure;
    values are literals, the wildcard [*] ("any value"), enumeration
    symbols, register parameters, or — for structure targets — a brace
    list of per-field values. *)

type action_value =
  | AV_int of int
  | AV_bool of bool
  | AV_any  (** [*]: any value is acceptable *)
  | AV_sym of ident  (** enum symbol, variable or register parameter *)

type assignment =
  | Assign of ident * action_value
  | Assign_struct of ident * (ident * action_value) list
      (** [XS = {XA => j; XRAE => true}] *)

type action = { assignments : assignment list; action_loc : Loc.t }

(** {1 Ports and registers} *)

type port_expr = {
  port_name : ident;
  port_offset : int option;  (** [base @ 2]; [None] when the port is bare *)
  port_loc : Loc.t;
}

type access = Acc_read | Acc_write | Acc_read_write

type reg_attr =
  | RA_mask of { mask_text : string; mask_loc : Loc.t }
  | RA_pre of action
  | RA_post of action
  | RA_set of action

type reg_param = { param_name : ident; param_set : int_set }

type reg_body =
  | RB_ports of (access * port_expr) list
      (** port bindings, e.g. [read base@0] or [base@1] (read-write) *)
  | RB_instance of { template : ident; args : int list; args_loc : Loc.t }
      (** instantiation of a parameterized register, e.g. [I(23)] *)

type reg_decl = {
  reg_name : ident;
  reg_params : reg_param list;  (** non-empty for [register I(i : ...)] *)
  reg_body : reg_body;
  reg_attrs : reg_attr list;
  reg_size : int option;  (** [: bit\[8\]]; [None] for instances *)
  reg_loc : Loc.t;
}

(** {1 Variables} *)

type chunk = {
  chunk_reg : ident;
  chunk_ranges : int_set_item list;
      (** bit ranges, MSB fragment first, e.g. [\[2,7..4\]]; empty list
          means the whole register *)
  chunk_loc : Loc.t;
}

type trigger_dir = Trig_read | Trig_write | Trig_both

type var_attr =
  | VA_volatile
  | VA_trigger of {
      t_dir : trigger_dir;
      t_exempt : exempt option;
    }
  | VA_block
  | VA_set of action
  | VA_pre of action
  | VA_post of action

and exempt =
  | Exempt_except of ident  (** [trigger except NODMA]: neutral value *)
  | Exempt_for of action_value  (** [trigger for true]: only this value fires *)

type serial_item = {
  si_cond : serial_cond option;
  si_reg : ident;
}

and serial_cond = {
  sc_var : ident;
  sc_negated : bool;  (** [!=] when true *)
  sc_value : action_value;
}

type var_decl = {
  var_name : ident;
  var_private : bool;
  var_chunks : chunk list;  (** MSB-first concatenation; [] = pure memory cell *)
  var_attrs : var_attr list;
  var_type : dtype_loc option;
  var_serial : serial_item list option;  (** [serialized as { ... }] *)
  var_loc : Loc.t;
}

(** {1 Structures} *)

type struct_decl = {
  struct_name : ident;
  struct_private : bool;
  struct_fields : var_decl list;
  struct_serial : serial_item list option;
  struct_loc : Loc.t;
}

(** {1 Devices} *)

type device_param = {
  dp_name : ident;
  dp_kind : dp_kind;
  dp_loc : Loc.t;
}

and dp_kind =
  | DP_port of { width : int; offsets : int_set }
      (** [base : bit\[8\] port @ {0..3}] *)
  | DP_const of dtype_loc  (** configuration constant, for conditional decls *)

type decl =
  | D_register of reg_decl
  | D_variable of var_decl
  | D_structure of struct_decl
  | D_conditional of cond_decl
      (** [if (param == v) { decls } \[else { decls }\]] *)

and cond_decl = {
  cd_cond : serial_cond;
  cd_then : decl list;
  cd_else : decl list;
  cd_loc : Loc.t;
}

type device = {
  dev_name : ident;
  dev_params : device_param list;
  dev_decls : decl list;
  dev_loc : Loc.t;
}

val ident_name : ident -> string
val int_set_mem : int -> int_set -> bool
val int_set_values : int_set -> int list
(** Enumerates the member values in ascending order, without duplicates. *)

val int_set_cardinal : int_set -> int

val int_set_span : int_set -> int
(** Upper bound on the cardinality, computed without materializing the
    member list — guards against pathological ranges. *)
