lib/devil_syntax/diagnostics.ml: Format List Loc
