lib/devil_syntax/loc.mli: Format
