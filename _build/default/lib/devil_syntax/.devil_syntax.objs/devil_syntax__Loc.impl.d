lib/devil_syntax/loc.ml: Format
