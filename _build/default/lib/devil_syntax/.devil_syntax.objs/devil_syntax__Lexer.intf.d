lib/devil_syntax/lexer.mli: Diagnostics Token
