lib/devil_syntax/pretty.mli: Ast Format
