lib/devil_syntax/lexer.ml: Diagnostics List Loc String Token
