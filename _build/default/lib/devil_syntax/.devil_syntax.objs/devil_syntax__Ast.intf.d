lib/devil_syntax/ast.mli: Loc
