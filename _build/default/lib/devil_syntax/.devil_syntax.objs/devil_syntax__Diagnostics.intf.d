lib/devil_syntax/diagnostics.mli: Format Loc
