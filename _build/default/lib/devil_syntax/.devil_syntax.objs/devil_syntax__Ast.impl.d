lib/devil_syntax/ast.ml: List Loc
