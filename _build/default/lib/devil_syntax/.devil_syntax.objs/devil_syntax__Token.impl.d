lib/devil_syntax/token.ml: Format List Loc
