lib/devil_syntax/parser.mli: Ast Diagnostics Token
