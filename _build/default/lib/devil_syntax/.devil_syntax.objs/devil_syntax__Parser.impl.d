lib/devil_syntax/parser.ml: Array Ast Diagnostics Lexer List Loc Token
