lib/devil_syntax/pretty.ml: Ast Format List
