lib/devil_syntax/token.mli: Format Loc
