type severity = Error | Warning

type item = { severity : severity; loc : Loc.t; message : string }

type t = { mutable rev_items : item list; mutable errors : int }

exception Error of item

let create () = { rev_items = []; errors = 0 }

let add t item =
  t.rev_items <- item :: t.rev_items;
  match item.severity with Error -> t.errors <- t.errors + 1 | Warning -> ()

let error t loc fmt =
  Format.kasprintf (fun message -> add t { severity = Error; loc; message }) fmt

let warning t loc fmt =
  Format.kasprintf (fun message -> add t { severity = Warning; loc; message }) fmt

let fail loc fmt =
  Format.kasprintf
    (fun message -> raise (Error { severity = Error; loc; message }))
    fmt

let items t = List.rev t.rev_items
let error_count t = t.errors
let has_errors t = t.errors > 0

let pp_severity fmt (s : severity) =
  match s with
  | Error -> Format.pp_print_string fmt "error"
  | Warning -> Format.pp_print_string fmt "warning"

let pp_item fmt { severity; loc; message } =
  Format.fprintf fmt "%a: %a: %s" Loc.pp loc pp_severity severity message

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_item fmt (items t)

let merge_into ~dst src = List.iter (add dst) (items src)
