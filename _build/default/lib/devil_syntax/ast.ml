type ident = { name : string; loc : Loc.t }

type int_set_item = Single of int | Range of int * int
type int_set = { items : int_set_item list; set_loc : Loc.t }

type enum_dir = Dir_read | Dir_write | Dir_both

type enum_case = {
  case_name : ident;
  dir : enum_dir;
  pattern : string;
  pattern_loc : Loc.t;
}

type dtype =
  | T_bool
  | T_int of { signed : bool; bits : int }
  | T_int_set of int_set
  | T_enum of enum_case list

type dtype_loc = { ty : dtype; ty_loc : Loc.t }

type action_value =
  | AV_int of int
  | AV_bool of bool
  | AV_any
  | AV_sym of ident

type assignment =
  | Assign of ident * action_value
  | Assign_struct of ident * (ident * action_value) list

type action = { assignments : assignment list; action_loc : Loc.t }

type port_expr = {
  port_name : ident;
  port_offset : int option;
  port_loc : Loc.t;
}

type access = Acc_read | Acc_write | Acc_read_write

type reg_attr =
  | RA_mask of { mask_text : string; mask_loc : Loc.t }
  | RA_pre of action
  | RA_post of action
  | RA_set of action

type reg_param = { param_name : ident; param_set : int_set }

type reg_body =
  | RB_ports of (access * port_expr) list
  | RB_instance of { template : ident; args : int list; args_loc : Loc.t }

type reg_decl = {
  reg_name : ident;
  reg_params : reg_param list;
  reg_body : reg_body;
  reg_attrs : reg_attr list;
  reg_size : int option;
  reg_loc : Loc.t;
}

type chunk = {
  chunk_reg : ident;
  chunk_ranges : int_set_item list;
  chunk_loc : Loc.t;
}

type trigger_dir = Trig_read | Trig_write | Trig_both

type var_attr =
  | VA_volatile
  | VA_trigger of { t_dir : trigger_dir; t_exempt : exempt option }
  | VA_block
  | VA_set of action
  | VA_pre of action
  | VA_post of action

and exempt = Exempt_except of ident | Exempt_for of action_value

type serial_item = { si_cond : serial_cond option; si_reg : ident }

and serial_cond = {
  sc_var : ident;
  sc_negated : bool;
  sc_value : action_value;
}

type var_decl = {
  var_name : ident;
  var_private : bool;
  var_chunks : chunk list;
  var_attrs : var_attr list;
  var_type : dtype_loc option;
  var_serial : serial_item list option;
  var_loc : Loc.t;
}

type struct_decl = {
  struct_name : ident;
  struct_private : bool;
  struct_fields : var_decl list;
  struct_serial : serial_item list option;
  struct_loc : Loc.t;
}

type device_param = { dp_name : ident; dp_kind : dp_kind; dp_loc : Loc.t }

and dp_kind =
  | DP_port of { width : int; offsets : int_set }
  | DP_const of dtype_loc

type decl =
  | D_register of reg_decl
  | D_variable of var_decl
  | D_structure of struct_decl
  | D_conditional of cond_decl

and cond_decl = {
  cd_cond : serial_cond;
  cd_then : decl list;
  cd_else : decl list;
  cd_loc : Loc.t;
}

type device = {
  dev_name : ident;
  dev_params : device_param list;
  dev_decls : decl list;
  dev_loc : Loc.t;
}

let ident_name (i : ident) = i.name

let int_set_mem v { items; _ } =
  List.exists
    (function Single x -> x = v | Range (a, b) -> v >= a && v <= b)
    items

let int_set_values { items; _ } =
  let values =
    List.concat_map
      (function
        | Single x -> [ x ]
        | Range (a, b) -> List.init (max 0 (b - a + 1)) (fun i -> a + i))
      items
  in
  List.sort_uniq compare values

let int_set_cardinal set = List.length (int_set_values set)

let int_set_span { items; _ } =
  List.fold_left
    (fun acc item ->
      acc
      + match item with Single _ -> 1 | Range (a, b) -> max 0 (b - a + 1))
    0 items
