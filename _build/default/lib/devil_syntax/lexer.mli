(** Hand-written lexer for Devil.

    Supports [//] line comments and [/* ... */] block comments, decimal
    and [0x] hexadecimal integer literals, and bit literals written
    between single quotes (e.g. ['1001000.']). *)

val tokenize : ?file:string -> string -> Token.loc_token list
(** Lexes a whole source string into tokens, ending with {!Token.EOF}.
    Raises {!Diagnostics.Error} on a lexical error. *)

val tokenize_result :
  ?file:string -> string -> (Token.loc_token list, Diagnostics.item) result
(** Exception-free variant of {!tokenize}, used by the mutation engine
    where most mutants are expected to be ill-formed. *)
