type pos = { line : int; col : int; offset : int }

type t = { file : string; start_pos : pos; end_pos : pos }

let dummy_pos = { line = 0; col = 0; offset = -1 }
let dummy = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }
let is_dummy t = t.start_pos.offset < 0
let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { file = a.file; start_pos = a.start_pos; end_pos = b.end_pos }

let pp fmt t =
  if is_dummy t then Format.fprintf fmt "<builtin>"
  else if t.start_pos.line = t.end_pos.line then
    Format.fprintf fmt "%s:%d:%d" t.file t.start_pos.line t.start_pos.col
  else
    Format.fprintf fmt "%s:%d:%d-%d:%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col
