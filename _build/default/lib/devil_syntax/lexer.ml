type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let current_pos st : Loc.pos =
  { line = st.line; col = st.pos - st.bol + 1; offset = st.pos }

let loc_from st start_pos =
  Loc.make ~file:st.file ~start_pos ~end_pos:(current_pos st)

let fail_at st start_pos fmt = Diagnostics.fail (loc_from st start_pos) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          let rec to_eol () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                to_eol ()
          in
          to_eol ();
          skip_trivia st
      | Some '*' ->
          let start = current_pos st in
          advance st;
          advance st;
          let rec to_close () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | Some _, _ ->
                advance st;
                to_close ()
            | None, _ -> fail_at st start "unterminated block comment"
          in
          to_close ();
          skip_trivia st
      | Some _ | None -> ())
  | Some _ | None -> ()

let lex_while st pred =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when pred c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let lex_number st start_pos =
  let to_int text =
    match int_of_string_opt text with
    | Some n -> n
    | None -> fail_at st start_pos "integer literal out of range"
  in
  match (peek st, peek2 st) with
  | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      let digits = lex_while st is_hex_digit in
      if digits = "" then fail_at st start_pos "missing hexadecimal digits"
      else to_int ("0x" ^ digits)
  | _ ->
      let digits = lex_while st is_digit in
      (* Reject C-style trailing identifier chars (e.g. "12ab"). *)
      (match peek st with
      | Some c when is_ident_char c ->
          fail_at st start_pos "malformed integer literal"
      | Some _ | None -> ());
      to_int digits

let is_bit_char = function '0' | '1' | '.' | '*' | '-' -> true | _ -> false

let lex_bitlit st start_pos =
  advance st;
  (* opening quote *)
  let body = lex_while st is_bit_char in
  match peek st with
  | Some '\'' ->
      advance st;
      if body = "" then fail_at st start_pos "empty bit literal" else body
  | Some c -> fail_at st start_pos "invalid character %C in bit literal" c
  | None -> fail_at st start_pos "unterminated bit literal"

let next_token st : Token.loc_token =
  skip_trivia st;
  let start_pos = current_pos st in
  let mk token =
    let loc = loc_from st start_pos in
    let text =
      String.sub st.src start_pos.offset (st.pos - start_pos.offset)
    in
    { Token.token; loc; text }
  in
  let simple token =
    advance st;
    mk token
  in
  match peek st with
  | None -> { Token.token = EOF; loc = loc_from st start_pos; text = "" }
  | Some c when is_digit c -> mk (INT (lex_number st start_pos))
  | Some c when is_lower c ->
      let word = lex_while st is_ident_char in
      mk
        (match Token.keyword_of_string word with
        | Some kw -> KW kw
        | None -> IDENT word)
  | Some c when is_upper c ->
      let word = lex_while st is_ident_char in
      mk (UIDENT word)
  | Some '\'' -> mk (BITLIT (lex_bitlit st start_pos))
  | Some '{' -> simple LBRACE
  | Some '}' -> simple RBRACE
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some '[' -> simple LBRACKET
  | Some ']' -> simple RBRACKET
  | Some '@' -> simple AT
  | Some ':' -> simple COLON
  | Some ';' -> simple SEMI
  | Some ',' -> simple COMMA
  | Some '#' -> simple HASH
  | Some '*' -> simple STAR
  | Some '=' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          mk EQEQ
      | Some '>' ->
          advance st;
          mk MAPSTO
      | Some _ | None -> mk EQ)
  | Some '!' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          mk NEQ
      | Some _ | None -> fail_at st start_pos "expected '=' after '!'")
  | Some '<' -> (
      advance st;
      match peek st with
      | Some '=' -> (
          advance st;
          match peek st with
          | Some '>' ->
              advance st;
              mk MAPSBOTH
          | Some _ | None -> mk MAPSFROM)
      | Some _ | None -> fail_at st start_pos "expected '=' after '<'")
  | Some '.' -> (
      advance st;
      match peek st with
      | Some '.' ->
          advance st;
          mk DOTDOT
      | Some _ | None -> fail_at st start_pos "expected '..'")
  | Some c -> fail_at st start_pos "unexpected character %C" c

let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok = next_token st in
    match tok.Token.token with
    | EOF -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []

let tokenize_result ?file src =
  match tokenize ?file src with
  | tokens -> Ok tokens
  | exception Diagnostics.Error item -> Error item
