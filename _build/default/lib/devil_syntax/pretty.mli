(** Pretty-printer for Devil surface syntax.

    The output is valid Devil source: [parse (print ast)] yields a
    structurally equal AST (up to locations), which round-trip tests
    rely on. *)

val pp_dtype : Format.formatter -> Ast.dtype -> unit
val pp_action_value : Format.formatter -> Ast.action_value -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_chunk : Format.formatter -> Ast.chunk -> unit
val pp_reg_decl : Format.formatter -> Ast.reg_decl -> unit
val pp_var_decl : Format.formatter -> Ast.var_decl -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_device : Format.formatter -> Ast.device -> unit

val device_to_string : Ast.device -> string
