(** Source locations for Devil specifications. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset in the source *)
}

type t = { file : string; start_pos : pos; end_pos : pos }

val dummy : t
(** A location standing for "no position" (built-in entities). *)

val make : file:string -> start_pos:pos -> end_pos:pos -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]. Dummy
    locations are absorbed by the other argument. *)

val pp : Format.formatter -> t -> unit
(** Prints ["file:line:col"] (or ["file:l1:c1-l2:c2"] for multi-point
    spans on the same line group). *)

val is_dummy : t -> bool
