(** Diagnostic accumulation and reporting for the Devil compiler.

    Every pass (lexing, parsing, elaboration, checking) reports problems
    through a [t]; the driver decides whether to abort. Fatal syntax
    errors still raise {!Error} because recovery is not attempted. *)

type severity = Error | Warning

type item = { severity : severity; loc : Loc.t; message : string }

type t

exception Error of item
(** Raised for unrecoverable (syntax) errors. *)

val create : unit -> t

val error : t -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warning : t -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val fail : Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Formats a message and raises {!Error}. *)

val items : t -> item list
(** All reported items, in report order. *)

val error_count : t -> int
val has_errors : t -> bool

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit

val merge_into : dst:t -> t -> unit
(** Appends every item of the second argument into [dst]. *)
