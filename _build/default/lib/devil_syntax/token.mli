(** Lexical tokens of the Devil language.

    The token type is shared between the compiler front-end and the
    mutation-analysis engine (which mutates token text and re-lexes). *)

type keyword =
  | Kdevice
  | Kregister
  | Kvariable
  | Kstructure
  | Kprivate
  | Kread
  | Kwrite
  | Kmask
  | Kpre
  | Kpost
  | Kset
  | Kvolatile
  | Ktrigger
  | Kexcept
  | Kfor
  | Kblock
  | Kserialized
  | Kas
  | Kif
  | Kelse
  | Kint
  | Ksigned
  | Kbool
  | Kport
  | Kbit
  | Ktrue
  | Kfalse

type t =
  | IDENT of string  (** identifier starting with a lowercase letter or [_] *)
  | UIDENT of string  (** identifier starting with an uppercase letter *)
  | INT of int  (** decimal or 0x-hexadecimal literal *)
  | BITLIT of string  (** bit literal: the characters between single quotes *)
  | KW of keyword
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | AT  (** [@] *)
  | COLON
  | SEMI
  | COMMA
  | HASH  (** [#], register concatenation *)
  | EQ  (** [=] *)
  | EQEQ  (** [==] *)
  | NEQ  (** [!=] *)
  | MAPSTO  (** [=>], write mapping *)
  | MAPSFROM  (** [<=], read mapping *)
  | MAPSBOTH  (** [<=>], read-write mapping *)
  | DOTDOT  (** [..] *)
  | STAR  (** [*], the "any value" token *)
  | EOF

type loc_token = { token : t; loc : Loc.t; text : string }
(** A token together with its location and original source text. *)

val keyword_of_string : string -> keyword option
val string_of_keyword : keyword -> string

val to_string : t -> string
(** Canonical source text of a token. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
