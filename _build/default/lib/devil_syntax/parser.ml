open Ast

type state = { tokens : Token.loc_token array; mutable cursor : int }

let current st = st.tokens.(st.cursor)
let current_loc st = (current st).Token.loc
let peek_token st = (current st).Token.token

let peek_token_at st n =
  let i = st.cursor + n in
  if i < Array.length st.tokens then st.tokens.(i).Token.token else Token.EOF

let advance st =
  if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let fail st fmt = Diagnostics.fail (current_loc st) fmt

let expect st token =
  if Token.equal (peek_token st) token then (
    let loc = current_loc st in
    advance st;
    loc)
  else
    fail st "expected %s but found %s" (Token.to_string token)
      (Token.to_string (peek_token st))

let expect_kw st kw = ignore (expect st (Token.KW kw))

let accept st token =
  if Token.equal (peek_token st) token then (
    advance st;
    true)
  else false

let accept_kw st kw = accept st (Token.KW kw)

let parse_int st =
  match peek_token st with
  | Token.INT n ->
      advance st;
      n
  | t -> fail st "expected an integer but found %s" (Token.to_string t)

(* Identifiers: Devil names may start with either case (enum symbols and
   some device variables are conventionally uppercase), so both token
   kinds are accepted wherever a name is expected. *)
let parse_name st =
  match peek_token st with
  | Token.IDENT s | Token.UIDENT s ->
      let loc = current_loc st in
      advance st;
      { name = s; loc }
  | t -> fail st "expected an identifier but found %s" (Token.to_string t)

let parse_uname st =
  match peek_token st with
  | Token.UIDENT s ->
      let loc = current_loc st in
      advance st;
      { name = s; loc }
  | t ->
      fail st "expected an uppercase symbolic name but found %s"
        (Token.to_string t)

(* int_set_items := item ("," item)*  with item := INT (".." INT)? *)
let parse_int_set_items st =
  let parse_item () =
    let a = parse_int st in
    if accept st Token.DOTDOT then Range (a, parse_int st) else Single a
  in
  let rec go acc =
    let item = parse_item () in
    if accept st Token.COMMA then go (item :: acc) else List.rev (item :: acc)
  in
  go []

let parse_braced_int_set st =
  let start = expect st Token.LBRACE in
  let items = parse_int_set_items st in
  let stop = expect st Token.RBRACE in
  { items; set_loc = Loc.merge start stop }

(* "bit" "[" INT "]" *)
let parse_bit_width st =
  expect_kw st Token.Kbit;
  ignore (expect st Token.LBRACKET);
  let width = parse_int st in
  ignore (expect st Token.RBRACKET);
  width

let parse_action_value st =
  match peek_token st with
  | Token.INT n ->
      advance st;
      AV_int n
  | Token.STAR ->
      advance st;
      AV_any
  | Token.KW Token.Ktrue ->
      advance st;
      AV_bool true
  | Token.KW Token.Kfalse ->
      advance st;
      AV_bool false
  | Token.IDENT _ | Token.UIDENT _ -> AV_sym (parse_name st)
  | t -> fail st "expected a value but found %s" (Token.to_string t)

(* assignment := name "=" (value | "{" name "=>" value (";" ...)* "}") *)
let parse_assignment st =
  let target = parse_name st in
  ignore (expect st Token.EQ);
  if Token.equal (peek_token st) Token.LBRACE then (
    ignore (expect st Token.LBRACE);
    let parse_field () =
      let field = parse_name st in
      ignore (expect st Token.MAPSTO);
      let value = parse_action_value st in
      (field, value)
    in
    let rec go acc =
      let f = parse_field () in
      if accept st Token.SEMI && not (Token.equal (peek_token st) Token.RBRACE)
      then go (f :: acc)
      else List.rev (f :: acc)
    in
    let fields = go [] in
    ignore (expect st Token.RBRACE);
    Assign_struct (target, fields))
  else Assign (target, parse_action_value st)

(* action := "{" assignment (";" assignment)* ";"? "}" *)
let parse_action_block st =
  let start = expect st Token.LBRACE in
  let rec go acc =
    if Token.equal (peek_token st) Token.RBRACE then List.rev acc
    else
      let a = parse_assignment st in
      if accept st Token.SEMI then go (a :: acc) else List.rev (a :: acc)
  in
  let assignments = go [] in
  let stop = expect st Token.RBRACE in
  { assignments; action_loc = Loc.merge start stop }

(* port_expr := name ("@" INT)? *)
let parse_port_expr st =
  let port_name = parse_name st in
  let port_offset, stop_loc =
    if accept st Token.AT then
      let loc = current_loc st in
      (Some (parse_int st), loc)
    else (None, port_name.loc)
  in
  { port_name; port_offset; port_loc = Loc.merge port_name.loc stop_loc }

let parse_enum_dir st =
  match peek_token st with
  | Token.MAPSTO ->
      advance st;
      Dir_write
  | Token.MAPSFROM ->
      advance st;
      Dir_read
  | Token.MAPSBOTH ->
      advance st;
      Dir_both
  | t -> fail st "expected '=>', '<=' or '<=>' but found %s" (Token.to_string t)

let parse_enum_cases st =
  let parse_case () =
    let case_name = parse_uname st in
    let dir = parse_enum_dir st in
    match peek_token st with
    | Token.BITLIT pattern ->
        let pattern_loc = current_loc st in
        advance st;
        { case_name; dir; pattern; pattern_loc }
    | t -> fail st "expected a bit literal but found %s" (Token.to_string t)
  in
  let rec go acc =
    let case = parse_case () in
    if accept st Token.COMMA then go (case :: acc) else List.rev (case :: acc)
  in
  go []

(* dtype := "bool"
          | "signed"? "int" ("(" INT ")" | "{" int_set "}")
          | "{" enum_cases "}" *)
let parse_dtype st =
  let start = current_loc st in
  let ty =
    match peek_token st with
    | Token.KW Token.Kbool ->
        advance st;
        T_bool
    | Token.KW Token.Ksigned ->
        advance st;
        expect_kw st Token.Kint;
        ignore (expect st Token.LPAREN);
        let bits = parse_int st in
        ignore (expect st Token.RPAREN);
        T_int { signed = true; bits }
    | Token.KW Token.Kint -> (
        advance st;
        match peek_token st with
        | Token.LPAREN ->
            advance st;
            let bits = parse_int st in
            ignore (expect st Token.RPAREN);
            T_int { signed = false; bits }
        | Token.LBRACE -> T_int_set (parse_braced_int_set st)
        | t ->
            fail st "expected '(' or '{' after 'int' but found %s"
              (Token.to_string t))
    | Token.LBRACE ->
        advance st;
        let cases = parse_enum_cases st in
        ignore (expect st Token.RBRACE);
        T_enum cases
    | t -> fail st "expected a type but found %s" (Token.to_string t)
  in
  { ty; ty_loc = Loc.merge start (current_loc st) }

(* serial_item := ("if" "(" name ("=="|"!=") value ")")? name *)
let parse_serial_items st =
  let parse_item () =
    if accept_kw st Token.Kif then (
      ignore (expect st Token.LPAREN);
      let sc_var = parse_name st in
      let sc_negated =
        match peek_token st with
        | Token.EQEQ ->
            advance st;
            false
        | Token.NEQ ->
            advance st;
            true
        | t -> fail st "expected '==' or '!=' but found %s" (Token.to_string t)
      in
      let sc_value = parse_action_value st in
      ignore (expect st Token.RPAREN);
      let si_reg = parse_name st in
      { si_cond = Some { sc_var; sc_negated; sc_value }; si_reg })
    else { si_cond = None; si_reg = parse_name st }
  in
  let rec go acc =
    if Token.equal (peek_token st) Token.RBRACE then List.rev acc
    else
      let item = parse_item () in
      if accept st Token.SEMI then go (item :: acc) else List.rev (item :: acc)
  in
  ignore (expect st Token.LBRACE);
  let items = go [] in
  ignore (expect st Token.RBRACE);
  items

let parse_serial_clause st =
  if accept_kw st Token.Kserialized then (
    expect_kw st Token.Kas;
    Some (parse_serial_items st))
  else None

(* {1 Registers} *)

let parse_reg_attr st =
  match peek_token st with
  | Token.KW Token.Kmask -> (
      advance st;
      match peek_token st with
      | Token.BITLIT mask_text ->
          let mask_loc = current_loc st in
          advance st;
          Some (RA_mask { mask_text; mask_loc })
      | t -> fail st "expected a bit literal after 'mask' but found %s"
               (Token.to_string t))
  | Token.KW Token.Kpre ->
      advance st;
      Some (RA_pre (parse_action_block st))
  | Token.KW Token.Kpost ->
      advance st;
      Some (RA_post (parse_action_block st))
  | Token.KW Token.Kset ->
      advance st;
      Some (RA_set (parse_action_block st))
  | _ -> None

(* After '=': either an instantiation [I(23)] or port bindings.  The
   first binding may be bare (read-write); subsequent bindings must be
   introduced by 'read' or 'write'. *)
let parse_reg_body_and_attrs st =
  let is_instance =
    (match peek_token st with Token.IDENT _ | Token.UIDENT _ -> true | _ -> false)
    && Token.equal (peek_token_at st 1) Token.LPAREN
  in
  if is_instance then (
    let template = parse_name st in
    let args_start = expect st Token.LPAREN in
    let rec go acc =
      let n = parse_int st in
      if accept st Token.COMMA then go (n :: acc) else List.rev (n :: acc)
    in
    let args = go [] in
    let args_stop = expect st Token.RPAREN in
    let body =
      RB_instance { template; args; args_loc = Loc.merge args_start args_stop }
    in
    let rec attrs acc =
      if accept st Token.COMMA then
        match parse_reg_attr st with
        | Some a -> attrs (a :: acc)
        | None -> fail st "expected a register attribute after ','"
      else List.rev acc
    in
    (body, attrs []))
  else
    let parse_binding ~require_access =
      match peek_token st with
      | Token.KW Token.Kread ->
          advance st;
          Some (Acc_read, parse_port_expr st)
      | Token.KW Token.Kwrite ->
          advance st;
          Some (Acc_write, parse_port_expr st)
      | (Token.IDENT _ | Token.UIDENT _) when not require_access ->
          Some (Acc_read_write, parse_port_expr st)
      | _ -> None
    in
    let first =
      match parse_binding ~require_access:false with
      | Some b -> b
      | None -> fail st "expected a port binding"
    in
    (* Additional bindings may follow directly (read p1 write p2) or
       after a comma; a comma may instead introduce attributes. *)
    let rec go bindings attrs =
      match parse_binding ~require_access:true with
      | Some b -> go (b :: bindings) attrs
      | None ->
          if accept st Token.COMMA then
            match parse_binding ~require_access:true with
            | Some b -> go (b :: bindings) attrs
            | None -> (
                match parse_reg_attr st with
                | Some a -> go bindings (a :: attrs)
                | None ->
                    fail st "expected a port binding or register attribute")
          else (List.rev bindings, List.rev attrs)
    in
    let bindings, attrs = go [ first ] [] in
    (RB_ports bindings, attrs)

let parse_reg_decl st =
  let start = expect st (Token.KW Token.Kregister) in
  let reg_name = parse_name st in
  let reg_params =
    if accept st Token.LPAREN then (
      let parse_param () =
        let param_name = parse_name st in
        ignore (expect st Token.COLON);
        expect_kw st Token.Kint;
        let param_set = parse_braced_int_set st in
        { param_name; param_set }
      in
      let rec go acc =
        let p = parse_param () in
        if accept st Token.COMMA then go (p :: acc) else List.rev (p :: acc)
      in
      let params = go [] in
      ignore (expect st Token.RPAREN);
      params)
    else []
  in
  ignore (expect st Token.EQ);
  let reg_body, reg_attrs = parse_reg_body_and_attrs st in
  let reg_size =
    if accept st Token.COLON then Some (parse_bit_width st) else None
  in
  let stop = expect st Token.SEMI in
  { reg_name; reg_params; reg_body; reg_attrs; reg_size;
    reg_loc = Loc.merge start stop }

(* {1 Variables} *)

(* chunk := name ("[" range ("," range)* "]")? *)
let parse_chunk st =
  let chunk_reg = parse_name st in
  let chunk_ranges, stop =
    if accept st Token.LBRACKET then (
      let parse_range () =
        let hi = parse_int st in
        if accept st Token.DOTDOT then Range (hi, parse_int st) else Single hi
      in
      let rec go acc =
        let r = parse_range () in
        if accept st Token.COMMA then go (r :: acc) else List.rev (r :: acc)
      in
      let ranges = go [] in
      let stop = expect st Token.RBRACKET in
      (ranges, stop))
    else ([], chunk_reg.loc)
  in
  { chunk_reg; chunk_ranges; chunk_loc = Loc.merge chunk_reg.loc stop }

let parse_chunks st =
  let rec go acc =
    let c = parse_chunk st in
    if accept st Token.HASH then go (c :: acc) else List.rev (c :: acc)
  in
  go []

let rec parse_var_attr st =
  match peek_token st with
  | Token.KW Token.Kvolatile ->
      advance st;
      Some VA_volatile
  | Token.KW Token.Kblock ->
      advance st;
      Some VA_block
  | Token.KW Token.Kset ->
      advance st;
      Some (VA_set (parse_action_block st))
  | Token.KW Token.Kpre ->
      advance st;
      Some (VA_pre (parse_action_block st))
  | Token.KW Token.Kpost ->
      advance st;
      Some (VA_post (parse_action_block st))
  | Token.KW Token.Kread when Token.equal (peek_token_at st 1)
                                (Token.KW Token.Ktrigger) ->
      advance st;
      advance st;
      Some (VA_trigger { t_dir = Trig_read; t_exempt = parse_exempt st })
  | Token.KW Token.Kwrite when Token.equal (peek_token_at st 1)
                                 (Token.KW Token.Ktrigger) ->
      advance st;
      advance st;
      Some (VA_trigger { t_dir = Trig_write; t_exempt = parse_exempt st })
  | Token.KW Token.Ktrigger ->
      advance st;
      Some (VA_trigger { t_dir = Trig_both; t_exempt = parse_exempt st })
  | _ -> None

and parse_exempt st =
  if accept_kw st Token.Kexcept then Some (Exempt_except (parse_name st))
  else if accept_kw st Token.Kfor then
    Some (Exempt_for (parse_action_value st))
  else None

let parse_var_decl ~private_ st =
  let start = expect st (Token.KW Token.Kvariable) in
  let var_name = parse_name st in
  let var_chunks, var_attrs =
    if accept st Token.EQ then (
      let chunks = parse_chunks st in
      let rec attrs acc =
        if accept st Token.COMMA then
          match parse_var_attr st with
          | Some a -> attrs (a :: acc)
          | None -> fail st "expected a variable attribute after ','"
        else List.rev acc
      in
      (chunks, attrs []))
    else ([], [])
  in
  let var_type =
    if accept st Token.COLON then Some (parse_dtype st) else None
  in
  let var_serial = parse_serial_clause st in
  let stop = expect st Token.SEMI in
  { var_name; var_private = private_; var_chunks; var_attrs; var_type;
    var_serial; var_loc = Loc.merge start stop }

(* {1 Structures and declarations} *)

let rec parse_struct_decl ~private_ st =
  let start = expect st (Token.KW Token.Kstructure) in
  let struct_name = parse_name st in
  ignore (expect st Token.EQ);
  ignore (expect st Token.LBRACE);
  let rec fields acc =
    match peek_token st with
    | Token.RBRACE -> List.rev acc
    | Token.KW Token.Kvariable ->
        fields (parse_var_decl ~private_:false st :: acc)
    | Token.KW Token.Kprivate ->
        advance st;
        fields (parse_var_decl ~private_:true st :: acc)
    | t ->
        fail st "expected a variable declaration in structure but found %s"
          (Token.to_string t)
  in
  let struct_fields = fields [] in
  ignore (expect st Token.RBRACE);
  let struct_serial = parse_serial_clause st in
  let stop = expect st Token.SEMI in
  { struct_name; struct_private = private_; struct_fields; struct_serial;
    struct_loc = Loc.merge start stop }

and parse_decl st =
  match peek_token st with
  | Token.KW Token.Kregister -> D_register (parse_reg_decl st)
  | Token.KW Token.Kvariable -> D_variable (parse_var_decl ~private_:false st)
  | Token.KW Token.Kstructure ->
      D_structure (parse_struct_decl ~private_:false st)
  | Token.KW Token.Kprivate -> (
      advance st;
      match peek_token st with
      | Token.KW Token.Kvariable ->
          D_variable (parse_var_decl ~private_:true st)
      | Token.KW Token.Kstructure ->
          D_structure (parse_struct_decl ~private_:true st)
      | t ->
          fail st "expected 'variable' or 'structure' after 'private', found %s"
            (Token.to_string t))
  | Token.KW Token.Kif -> D_conditional (parse_cond_decl st)
  | t -> fail st "expected a declaration but found %s" (Token.to_string t)

and parse_cond_decl st =
  let start = expect st (Token.KW Token.Kif) in
  ignore (expect st Token.LPAREN);
  let sc_var = parse_name st in
  let sc_negated =
    match peek_token st with
    | Token.EQEQ ->
        advance st;
        false
    | Token.NEQ ->
        advance st;
        true
    | t -> fail st "expected '==' or '!=' but found %s" (Token.to_string t)
  in
  let sc_value = parse_action_value st in
  ignore (expect st Token.RPAREN);
  let parse_block () =
    ignore (expect st Token.LBRACE);
    let rec go acc =
      if Token.equal (peek_token st) Token.RBRACE then List.rev acc
      else go (parse_decl st :: acc)
    in
    let decls = go [] in
    ignore (expect st Token.RBRACE);
    decls
  in
  let cd_then = parse_block () in
  let cd_else = if accept_kw st Token.Kelse then parse_block () else [] in
  { cd_cond = { sc_var; sc_negated; sc_value }; cd_then; cd_else;
    cd_loc = Loc.merge start (current_loc st) }

(* {1 Devices} *)

let parse_device_param st =
  let dp_name = parse_name st in
  ignore (expect st Token.COLON);
  let dp_kind =
    match peek_token st with
    | Token.KW Token.Kbit ->
        let width = parse_bit_width st in
        expect_kw st Token.Kport;
        let offsets =
          if accept st Token.AT then parse_braced_int_set st
          else
            (* A bare port parameter addresses a single location. *)
            { items = [ Single 0 ]; set_loc = dp_name.loc }
        in
        DP_port { width; offsets }
    | _ -> DP_const (parse_dtype st)
  in
  { dp_name; dp_kind; dp_loc = Loc.merge dp_name.loc (current_loc st) }

let parse_device_toplevel st =
  let start = expect st (Token.KW Token.Kdevice) in
  let dev_name = parse_name st in
  ignore (expect st Token.LPAREN);
  let dev_params =
    if Token.equal (peek_token st) Token.RPAREN then []
    else
      let rec go acc =
        let p = parse_device_param st in
        if accept st Token.COMMA then go (p :: acc) else List.rev (p :: acc)
      in
      go []
  in
  ignore (expect st Token.RPAREN);
  ignore (expect st Token.LBRACE);
  let rec decls acc =
    if Token.equal (peek_token st) Token.RBRACE then List.rev acc
    else decls (parse_decl st :: acc)
  in
  let dev_decls = decls [] in
  let stop = expect st Token.RBRACE in
  (* A trailing semicolon after the device body is tolerated. *)
  ignore (accept st Token.SEMI);
  (match peek_token st with
  | Token.EOF -> ()
  | t -> fail st "trailing input after device declaration: %s"
           (Token.to_string t));
  { dev_name; dev_params; dev_decls; dev_loc = Loc.merge start stop }

let parse_tokens tokens =
  match tokens with
  | [] -> invalid_arg "Parser.parse_tokens: empty token list"
  | _ ->
      let st = { tokens = Array.of_list tokens; cursor = 0 } in
      parse_device_toplevel st

let parse_device ?file src = parse_tokens (Lexer.tokenize ?file src)

let parse_device_result ?file src =
  match parse_device ?file src with
  | device -> Ok device
  | exception Diagnostics.Error item -> Error item
