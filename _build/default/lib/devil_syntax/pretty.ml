open Ast

let pp_sep_str s fmt () = Format.fprintf fmt "%s" s

let pp_int_set_item fmt = function
  | Single n -> Format.fprintf fmt "%d" n
  | Range (a, b) -> Format.fprintf fmt "%d..%d" a b

let pp_int_set fmt { items; _ } =
  Format.pp_print_list ~pp_sep:(pp_sep_str ",") pp_int_set_item fmt items

let pp_enum_dir fmt = function
  | Dir_read -> Format.pp_print_string fmt "<="
  | Dir_write -> Format.pp_print_string fmt "=>"
  | Dir_both -> Format.pp_print_string fmt "<=>"

let pp_enum_case fmt { case_name; dir; pattern; _ } =
  Format.fprintf fmt "%s %a '%s'" case_name.name pp_enum_dir dir pattern

let pp_dtype fmt = function
  | T_bool -> Format.pp_print_string fmt "bool"
  | T_int { signed; bits } ->
      Format.fprintf fmt "%sint(%d)" (if signed then "signed " else "") bits
  | T_int_set set -> Format.fprintf fmt "int{%a}" pp_int_set set
  | T_enum cases ->
      Format.fprintf fmt "{ %a }"
        (Format.pp_print_list ~pp_sep:(pp_sep_str ", ") pp_enum_case)
        cases

let pp_action_value fmt = function
  | AV_int n -> Format.fprintf fmt "%d" n
  | AV_bool b -> Format.fprintf fmt "%b" b
  | AV_any -> Format.pp_print_string fmt "*"
  | AV_sym id -> Format.pp_print_string fmt id.name

let pp_assignment fmt = function
  | Assign (target, v) ->
      Format.fprintf fmt "%s = %a" target.name pp_action_value v
  | Assign_struct (target, fields) ->
      let pp_field fmt (f, v) =
        Format.fprintf fmt "%s => %a" f.name pp_action_value v
      in
      Format.fprintf fmt "%s = {%a}" target.name
        (Format.pp_print_list ~pp_sep:(pp_sep_str "; ") pp_field)
        fields

let pp_action fmt { assignments; _ } =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(pp_sep_str "; ") pp_assignment)
    assignments

let pp_port_expr fmt { port_name; port_offset; _ } =
  match port_offset with
  | None -> Format.pp_print_string fmt port_name.name
  | Some off -> Format.fprintf fmt "%s @@ %d" port_name.name off

let pp_reg_attr fmt = function
  | RA_mask { mask_text; _ } -> Format.fprintf fmt "mask '%s'" mask_text
  | RA_pre a -> Format.fprintf fmt "pre %a" pp_action a
  | RA_post a -> Format.fprintf fmt "post %a" pp_action a
  | RA_set a -> Format.fprintf fmt "set %a" pp_action a

let pp_binding fmt (acc, port) =
  match acc with
  | Acc_read -> Format.fprintf fmt "read %a" pp_port_expr port
  | Acc_write -> Format.fprintf fmt "write %a" pp_port_expr port
  | Acc_read_write -> pp_port_expr fmt port

let pp_reg_body fmt = function
  | RB_ports bindings ->
      Format.pp_print_list ~pp_sep:(pp_sep_str " ") pp_binding fmt bindings
  | RB_instance { template; args; _ } ->
      Format.fprintf fmt "%s(%a)" template.name
        (Format.pp_print_list ~pp_sep:(pp_sep_str ", ") Format.pp_print_int)
        args

let pp_reg_params fmt = function
  | [] -> ()
  | params ->
      let pp_param fmt { param_name; param_set } =
        Format.fprintf fmt "%s : int{%a}" param_name.name pp_int_set param_set
      in
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(pp_sep_str ", ") pp_param)
        params

let pp_reg_decl fmt r =
  Format.fprintf fmt "register %s%a = %a" r.reg_name.name pp_reg_params
    r.reg_params pp_reg_body r.reg_body;
  List.iter (fun a -> Format.fprintf fmt ", %a" pp_reg_attr a) r.reg_attrs;
  (match r.reg_size with
  | Some n -> Format.fprintf fmt " : bit[%d]" n
  | None -> ());
  Format.pp_print_string fmt ";"

let pp_chunk fmt { chunk_reg; chunk_ranges; _ } =
  match chunk_ranges with
  | [] -> Format.pp_print_string fmt chunk_reg.name
  | ranges ->
      Format.fprintf fmt "%s[%a]" chunk_reg.name
        (Format.pp_print_list ~pp_sep:(pp_sep_str ",") pp_int_set_item)
        ranges

let pp_trigger_dir fmt = function
  | Trig_read -> Format.pp_print_string fmt "read "
  | Trig_write -> Format.pp_print_string fmt "write "
  | Trig_both -> ()

let pp_var_attr fmt = function
  | VA_volatile -> Format.pp_print_string fmt "volatile"
  | VA_block -> Format.pp_print_string fmt "block"
  | VA_set a -> Format.fprintf fmt "set %a" pp_action a
  | VA_pre a -> Format.fprintf fmt "pre %a" pp_action a
  | VA_post a -> Format.fprintf fmt "post %a" pp_action a
  | VA_trigger { t_dir; t_exempt } -> (
      Format.fprintf fmt "%atrigger" pp_trigger_dir t_dir;
      match t_exempt with
      | None -> ()
      | Some (Exempt_except id) -> Format.fprintf fmt " except %s" id.name
      | Some (Exempt_for v) ->
          Format.fprintf fmt " for %a" pp_action_value v)

let pp_serial_cond fmt { sc_var; sc_negated; sc_value } =
  Format.fprintf fmt "%s %s %a" sc_var.name
    (if sc_negated then "!=" else "==")
    pp_action_value sc_value

let pp_serial_item fmt { si_cond; si_reg } =
  match si_cond with
  | None -> Format.pp_print_string fmt si_reg.name
  | Some c -> Format.fprintf fmt "if (%a) %s" pp_serial_cond c si_reg.name

let pp_serial_clause fmt = function
  | None -> ()
  | Some items ->
      Format.fprintf fmt " serialized as { %a; }"
        (Format.pp_print_list ~pp_sep:(pp_sep_str "; ") pp_serial_item)
        items

let pp_var_decl fmt v =
  if v.var_private then Format.pp_print_string fmt "private ";
  Format.fprintf fmt "variable %s" v.var_name.name;
  (match v.var_chunks with
  | [] -> ()
  | chunks ->
      Format.fprintf fmt " = %a"
        (Format.pp_print_list ~pp_sep:(pp_sep_str " # ") pp_chunk)
        chunks);
  List.iter (fun a -> Format.fprintf fmt ", %a" pp_var_attr a) v.var_attrs;
  (match v.var_type with
  | Some { ty; _ } -> Format.fprintf fmt " : %a" pp_dtype ty
  | None -> ());
  pp_serial_clause fmt v.var_serial;
  Format.pp_print_string fmt ";"

let rec pp_decl fmt = function
  | D_register r -> pp_reg_decl fmt r
  | D_variable v -> pp_var_decl fmt v
  | D_structure s ->
      if s.struct_private then Format.pp_print_string fmt "private ";
      Format.fprintf fmt "@[<v 2>structure %s = {@,%a@]@,}" s.struct_name.name
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_var_decl)
        s.struct_fields;
      pp_serial_clause fmt s.struct_serial;
      Format.pp_print_string fmt ";"
  | D_conditional { cd_cond; cd_then; cd_else; _ } ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_serial_cond cd_cond
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
        cd_then;
      if cd_else <> [] then
        Format.fprintf fmt "@[<v 2> else {@,%a@]@,}"
          (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
          cd_else

let pp_device_param fmt { dp_name; dp_kind; _ } =
  match dp_kind with
  | DP_port { width; offsets } ->
      Format.fprintf fmt "%s : bit[%d] port @@ {%a}" dp_name.name width
        pp_int_set offsets
  | DP_const { ty; _ } ->
      Format.fprintf fmt "%s : %a" dp_name.name pp_dtype ty

let pp_device fmt d =
  Format.fprintf fmt "@[<v>@[<v 2>device %s(%a)@,{@,%a@]@,}@]" d.dev_name.name
    (Format.pp_print_list ~pp_sep:(pp_sep_str ", ") pp_device_param)
    d.dev_params
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
    d.dev_decls

let device_to_string d = Format.asprintf "%a" pp_device d
