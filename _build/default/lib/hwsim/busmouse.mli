(** Behavioural model of the Logitech bus mouse controller.

    Register map (offsets from the base port):
    - 0: data — returns one nibble of the motion counters, selected by
      the index written at offset 2; index 3 additionally exposes the
      button state in bits 7..5 and latches-and-clears the counters
      once the full read cycle completes;
    - 1: signature register (read/write scratch, used for probing);
    - 2: control — bit 7 = 1 selects the nibble index (bits 6..5);
      bit 7 = 0 writes the interrupt-enable flag (bit 4);
    - 3: configuration register (write-only). *)

type t

val create : unit -> t
val model : t -> Model.t

val move : t -> dx:int -> dy:int -> unit
(** Accumulates device-side motion (clamped to signed 8-bit). *)

val set_buttons : t -> int -> unit
(** Button state, 3 bits. *)

val interrupt_enabled : t -> bool
val config_byte : t -> int
val signature_byte : t -> int
