type direction = To_memory | From_memory

type channel = {
  mutable base_addr : int;
  mutable base_count : int;
  mutable cur_addr : int;
  mutable cur_count : int;
  mutable mode : int;
  mutable masked : bool;
  mutable tc : bool;  (* terminal count reached *)
  mutable request : bool;
}

type t = {
  channels : channel array;
  memory : Bytes.t;
  mutable flip_flop : bool;  (* false = low byte next *)
  mutable command : int;
  mutable disabled : bool;
}

let fresh_channel () =
  {
    base_addr = 0;
    base_count = 0;
    cur_addr = 0;
    cur_count = 0;
    mode = 0;
    masked = true;
    tc = false;
    request = false;
  }

let create ~memory_size =
  {
    channels = Array.init 4 (fun _ -> fresh_channel ());
    memory = Bytes.make memory_size '\000';
    flip_flop = false;
    command = 0;
    disabled = false;
  }

let memory t = t.memory
let terminal_count t ~channel = t.channels.(channel).tc
let channel_masked t ~channel = t.channels.(channel).masked
let programmed_address t ~channel = t.channels.(channel).base_addr
let programmed_count t ~channel = t.channels.(channel).base_count

let master_clear t =
  Array.iter
    (fun c ->
      c.base_addr <- 0;
      c.base_count <- 0;
      c.cur_addr <- 0;
      c.cur_count <- 0;
      c.masked <- true;
      c.tc <- false;
      c.request <- false)
    t.channels;
  t.flip_flop <- false;
  t.command <- 0;
  t.disabled <- false

let latch_byte t current v ~set =
  let v = v land 0xff in
  let updated =
    if t.flip_flop then (current land 0x00ff) lor (v lsl 8)
    else (current land 0xff00) lor v
  in
  t.flip_flop <- not t.flip_flop;
  set updated

let read_latched t current =
  let v =
    if t.flip_flop then (current lsr 8) land 0xff else current land 0xff
  in
  t.flip_flop <- not t.flip_flop;
  v

let status_byte t =
  let tc = ref 0 and rq = ref 0 in
  Array.iteri
    (fun i c ->
      if c.tc then tc := !tc lor (1 lsl i);
      if c.request then rq := !rq lor (1 lsl i))
    t.channels;
  (* Reading the status register clears the TC bits. *)
  Array.iter (fun c -> c.tc <- false) t.channels;
  !tc lor (!rq lsl 4)

let read t ~width:_ ~offset =
  match offset with
  | 0 | 2 | 4 | 6 ->
      let c = t.channels.(offset / 2) in
      read_latched t c.cur_addr
  | 1 | 3 | 5 | 7 ->
      let c = t.channels.(offset / 2) in
      read_latched t c.cur_count
  | 8 -> status_byte t
  | _ -> 0xff

let write t ~width:_ ~offset ~value =
  match offset with
  | 0 | 2 | 4 | 6 ->
      let c = t.channels.(offset / 2) in
      latch_byte t c.base_addr value ~set:(fun v ->
          c.base_addr <- v;
          c.cur_addr <- v)
  | 1 | 3 | 5 | 7 ->
      let c = t.channels.(offset / 2) in
      latch_byte t c.base_count value ~set:(fun v ->
          c.base_count <- v;
          c.cur_count <- v)
  | 8 ->
      t.command <- value land 0xff;
      t.disabled <- value land 0x04 <> 0
  | 9 ->
      let c = t.channels.(value land 0x3) in
      c.request <- value land 0x4 <> 0
  | 10 ->
      let c = t.channels.(value land 0x3) in
      c.masked <- value land 0x4 <> 0
  | 11 ->
      let c = t.channels.(value land 0x3) in
      c.mode <- value land 0xff
  | 12 -> t.flip_flop <- false
  | 13 -> master_clear t
  | 14 -> Array.iter (fun c -> c.masked <- false) t.channels
  | 15 ->
      Array.iteri (fun i c -> c.masked <- value land (1 lsl i) <> 0) t.channels
  | _ -> ()

let device_request t ~channel ~data dir =
  let c = t.channels.(channel) in
  if c.masked || t.disabled then 0
  else begin
    let requested = c.cur_count + 1 in
    let n = min requested (Bytes.length data) in
    let mem = Bytes.length t.memory in
    let down = c.mode land 0x20 <> 0 in
    for i = 0 to n - 1 do
      let addr = if down then c.cur_addr - i else c.cur_addr + i in
      if addr >= 0 && addr < mem then
        match dir with
        | To_memory -> Bytes.set t.memory addr (Bytes.get data i)
        | From_memory -> Bytes.set data i (Bytes.get t.memory addr)
    done;
    c.cur_addr <- (if down then c.cur_addr - n else c.cur_addr + n) land 0xffff;
    c.cur_count <- c.cur_count - n;
    if c.cur_count < 0 then begin
      c.tc <- true;
      if c.mode land 0x10 <> 0 then begin
        (* auto-init *)
        c.cur_addr <- c.base_addr;
        c.cur_count <- c.base_count
      end
      else c.masked <- true
    end;
    n
  end

let model t = { Model.name = "dma8237"; read = read t; write = write t }
