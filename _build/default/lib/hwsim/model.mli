(** Interface of a simulated device: a register file decoded by offset,
    width and direction, with whatever internal state machine the real
    chip implements behind it. *)

type t = {
  name : string;
  read : width:int -> offset:int -> int;
  write : width:int -> offset:int -> value:int -> unit;
}

val ram : name:string -> size:int -> t
(** A trivial model backed by per-offset cells, useful in tests. *)
