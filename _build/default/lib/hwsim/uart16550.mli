(** Behavioural model of a 16550 UART: the DLAB-selected divisor latch,
    16-byte receive and transmit FIFOs, line-status bits, the modem
    loopback mode (MCR bit 4), and interrupt identification.

    Transmitted bytes appear on the "wire" ({!take_transmitted}) unless
    loopback routes them back into the receive FIFO; the harness feeds
    incoming bytes with {!inject}. *)

type t

val create : unit -> t
val model : t -> Model.t

val inject : t -> string -> unit
(** Bytes arriving from the line into the receive FIFO (beyond 16
    pending bytes the overrun bit is set and data is dropped). *)

val take_transmitted : t -> string
(** Everything sent to the wire since the last call. *)

val divisor : t -> int
val line_control : t -> int
val loopback_enabled : t -> bool
val irq_asserted : t -> bool
