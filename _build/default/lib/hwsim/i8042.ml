type expect = Nothing | Config_byte | Led_byte

type t = {
  output : int Queue.t;  (* scancodes and responses, oldest first *)
  mutable config : int;
  mutable kbd_enabled : bool;
  mutable leds : int;
  mutable expect : expect;  (* what the next data-port write means *)
}

let create () =
  {
    output = Queue.create ();
    config = 0x45;
    kbd_enabled = true;
    leds = 0;
    expect = Nothing;
  }

let press t code =
  if t.kbd_enabled then Queue.push (code land 0xff) t.output;
  t.kbd_enabled

let leds t = t.leds
let keyboard_enabled t = t.kbd_enabled
let config_byte t = t.config

let status_byte t =
  let bit b cond = if cond then 1 lsl b else 0 in
  bit 0 (not (Queue.is_empty t.output))
  lor bit 2 true (* system flag: POST passed *)
  lor bit 4 true (* keylock open *)

let control_read t ~width:_ ~offset:_ = status_byte t

let control_write t ~width:_ ~offset:_ ~value =
  match value land 0xff with
  | 0x20 -> Queue.push t.config t.output  (* READ CONFIG *)
  | 0x60 -> t.expect <- Config_byte  (* WRITE CONFIG *)
  | 0xaa ->
      (* SELF TEST: respond 0x55, reset state. *)
      Queue.clear t.output;
      Queue.push 0x55 t.output;
      t.kbd_enabled <- true
  | 0xab -> Queue.push 0x00 t.output  (* IFACE TEST: ok *)
  | 0xad -> t.kbd_enabled <- false
  | 0xae -> t.kbd_enabled <- true
  | _ -> ()

let data_read t ~width:_ ~offset:_ =
  if Queue.is_empty t.output then 0 else Queue.pop t.output

let data_write t ~width:_ ~offset:_ ~value =
  let v = value land 0xff in
  match t.expect with
  | Config_byte ->
      t.config <- v;
      t.expect <- Nothing
  | Led_byte ->
      t.leds <- v land 0x7;
      t.expect <- Nothing;
      Queue.push 0xfa t.output  (* ACK *)
  | Nothing -> (
      (* Commands to the keyboard itself. *)
      match v with
      | 0xed ->
          t.expect <- Led_byte;
          Queue.push 0xfa t.output
      | 0xee -> Queue.push 0xee t.output  (* ECHO *)
      | 0xff ->
          (* keyboard reset: ACK then BAT ok *)
          Queue.push 0xfa t.output;
          Queue.push 0xaa t.output
      | _ -> Queue.push 0xfa t.output)

let data_model t =
  { Model.name = "i8042-data"; read = data_read t; write = data_write t }

let control_model t =
  { Model.name = "i8042-control"; read = control_read t; write = control_write t }
