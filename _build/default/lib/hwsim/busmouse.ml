module Bitops = Devil_bits.Bitops

type t = {
  mutable dx : int;  (* accumulated motion, signed 8-bit range *)
  mutable dy : int;
  mutable buttons : int;  (* 3 bits *)
  mutable index : int;  (* nibble selector, 0..3 *)
  mutable read_mask : int;  (* which nibbles were read since the last clear *)
  mutable irq_enabled : bool;
  mutable config : int;
  mutable signature : int;
}

let create () =
  {
    dx = 0;
    dy = 0;
    buttons = 0;
    index = 0;
    read_mask = 0;
    irq_enabled = false;
    config = 0;
    signature = 0;
  }

let clamp v = max (-128) (min 127 v)

let move t ~dx ~dy =
  t.dx <- clamp (t.dx + dx);
  t.dy <- clamp (t.dy + dy)

let set_buttons t b = t.buttons <- b land 0x7
let interrupt_enabled t = t.irq_enabled
let config_byte t = t.config
let signature_byte t = t.signature

let read_data t =
  let ux = Bitops.to_unsigned ~width:8 t.dx in
  let uy = Bitops.to_unsigned ~width:8 t.dy in
  let v =
    match t.index with
    | 0 -> ux land 0xf
    | 1 -> (ux lsr 4) land 0xf
    | 2 -> uy land 0xf
    | 3 -> (t.buttons lsl 5) lor ((uy lsr 4) land 0xf)
    | _ -> 0
  in
  (* Once every nibble of the counters has been sampled, the read cycle
     is complete and the counters restart from zero. *)
  t.read_mask <- t.read_mask lor (1 lsl t.index);
  if t.read_mask = 0xf then begin
    t.dx <- 0;
    t.dy <- 0;
    t.read_mask <- 0
  end;
  v

let read t ~width:_ ~offset =
  match offset with
  | 0 -> read_data t
  | 1 -> t.signature
  | 2 | 3 -> 0xff (* write-only locations float high *)
  | _ -> 0xff

let write t ~width:_ ~offset ~value =
  match offset with
  | 0 -> ()
  | 1 -> t.signature <- value land 0xff
  | 2 ->
      (* Bit 7 decodes index writes from interrupt-control writes. *)
      if value land 0x80 <> 0 then t.index <- (value lsr 5) land 0x3
      else t.irq_enabled <- value land 0x10 = 0
  | 3 -> t.config <- value land 0xff
  | _ -> ()

let model t =
  {
    Model.name = "logitech_busmouse";
    read = read t;
    write = write t;
  }
