(** Behavioural model of the Intel 8237A DMA controller.

    Implements the four channels' 16-bit base address and count
    registers accessed byte-at-a-time through the internal flip-flop,
    the command/status pair, the request, single-mask, mode, master
    clear, clear-mask and write-all-mask registers (offsets 0..15).

    {!device_request} simulates a peripheral asserting DREQ: if the
    channel is unmasked and programmed, the transfer runs against the
    provided memory, terminal count is set and the channel count
    rewinds (or restarts under auto-init). *)

type t

val create : memory_size:int -> t
val model : t -> Model.t
val memory : t -> Bytes.t

type direction = To_memory | From_memory

val device_request : t -> channel:int -> data:Bytes.t -> direction -> int
(** Runs a DMA burst on behalf of a device. For [To_memory], bytes from
    [data] are stored at the programmed address; for [From_memory],
    [data] is filled from memory. Returns the number of bytes moved
    (bounded by the programmed count + 1), or 0 when the channel is
    masked. *)

val terminal_count : t -> channel:int -> bool
val channel_masked : t -> channel:int -> bool
val programmed_address : t -> channel:int -> int
val programmed_count : t -> channel:int -> int
