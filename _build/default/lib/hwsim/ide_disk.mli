(** Behavioural model of an IDE (ATA) disk: task-file registers, PIO
    sector transfers through the 16-bit data window, and a DMA side
    channel used by the PIIX4 busmaster model.

    Command-block offsets (from the data/command base):
    0 data (16/32-bit), 1 error/features, 2 sector count, 3/4/5 LBA
    low/mid/high, 6 drive/head, 7 status/command. Control-block offset
    0 carries device control (write) and alternate status (read).

    The disk itself is a sparse sector store; sectors never written
    read back as zeroes. *)

type t

val sector_bytes : int  (** 512 *)

val create : ?sectors:int -> unit -> t
(** [sectors] bounds the addressable LBA range (default 65536). *)

val command_model : t -> Model.t
(** Model for the command block (offsets 0..7). *)

val control_model : t -> Model.t
(** Model for the control block (offset 0). *)

val irq_pending : t -> bool
(** True when the device has raised its interrupt line (one per DRQ
    block in PIO, one per command completion in DMA). *)

val take_irq : t -> bool
(** Reads and clears the interrupt line. *)

val irq_count : t -> int
(** Total interrupts raised since the last {!reset_irq_count}. *)

val reset_irq_count : t -> unit

(** {1 Back door for tests and the DMA engine} *)

val read_sector : t -> lba:int -> Bytes.t
val write_sector : t -> lba:int -> Bytes.t -> unit

val dma_read_pending : t -> (int * int) option
(** [(lba, count)] of an accepted READ_DMA command, if any. *)

val dma_write_pending : t -> (int * int) option

val dma_complete : t -> unit
(** Signals DMA completion: clears the pending command, sets DRDY and
    raises the interrupt. *)

val set_multiple : t -> int -> unit
(** Sectors per DRQ block for READ/WRITE (hdparm -m style coalescing
    of interrupts). Default 1. *)
