type t = {
  name : string;
  read : width:int -> offset:int -> int;
  write : width:int -> offset:int -> value:int -> unit;
}

let ram ~name ~size =
  let cells = Array.make size 0 in
  {
    name;
    read =
      (fun ~width ~offset ->
        cells.(offset) land Devil_bits.Bitops.width_mask width);
    write =
      (fun ~width ~offset ~value ->
        cells.(offset) <- value land Devil_bits.Bitops.width_mask width);
  }
