(** Behavioural model of the 3Dlabs Permedia2 2D engine subset.

    The controller decodes memory-mapped register writes into an input
    FIFO (capacity {!fifo_capacity}); a render command makes the engine
    busy for a time proportional to the touched pixels and their depth.
    Simulated time advances by one tick per bus access — the driver's
    FIFO wait loops (one read per iteration, paper §4.3) therefore
    both measure and provide the time the engine needs to drain.

    MMIO offsets: 0 FIFO space (r), 1 block color (w), 2 rectangle
    position (w), 3 rectangle size (w), 4 copy offset (w), 5 render
    command (w), 6 pixel depth (w), 7 engine status (r). A second
    port exposes a linear framebuffer aperture for software rendering.

    Writes issued while the FIFO is full are dropped and counted in
    {!overflows} — a correct driver never lets that happen. *)

type t

val fifo_capacity : int  (** 32 *)

val create : ?width:int -> ?height:int -> unit -> t
val mmio_model : t -> Model.t
val fb_model : t -> Model.t

val pixel : t -> x:int -> y:int -> int
(** Framebuffer inspection for tests. *)

val set_pixel : t -> x:int -> y:int -> int -> unit
val overflows : t -> int
val ticks : t -> int
(** Simulated time elapsed, in 30 ns units (writes cost 1, reads 10). *)

val busy_ticks_remaining : t -> int
val depth : t -> int
