type t = {
  mutable index : int;
  mutable hours : int;
  mutable minutes : int;
  mutable seconds : int;
  mutable alarm_h : int;
  mutable alarm_m : int;
  mutable alarm_s : int;
  mutable weekday : int;
  mutable day : int;
  mutable month : int;
  mutable year : int;
  mutable status_a : int;
  mutable status_b : int;
  mutable status_c : int;  (* pending irq flags, bits 6..4 *)
  mutable uip_countdown : int;
}

let create () =
  {
    index = 0;
    hours = 0;
    minutes = 0;
    seconds = 0;
    alarm_h = 0;
    alarm_m = 0;
    alarm_s = 0;
    weekday = 4;
    day = 1;
    month = 1;
    year = 0;
    status_a = 0x26;
    status_b = 0x06;  (* binary, 24h *)
    status_c = 0;
    uip_countdown = 0;
  }

let binary_mode t = t.status_b land 0x04 <> 0
let halted t = t.status_b land 0x80 <> 0

let to_bcd v = ((v / 10) lsl 4) lor (v mod 10)
let from_bcd v = (((v lsr 4) land 0xf) * 10) + (v land 0xf)

let encode t v = if binary_mode t then v else to_bcd v
let decode t v = if binary_mode t then v else from_bcd v

let set_time t ~hours ~minutes ~seconds =
  t.hours <- hours mod 24;
  t.minutes <- minutes mod 60;
  t.seconds <- seconds mod 60

let time t = (t.hours, t.minutes, t.seconds)

let alarm_match t =
  t.hours = t.alarm_h && t.minutes = t.alarm_m && t.seconds = t.alarm_s

let tick_seconds t n =
  if not (halted t) then
    for _ = 1 to n do
      t.seconds <- t.seconds + 1;
      if t.seconds = 60 then begin
        t.seconds <- 0;
        t.minutes <- t.minutes + 1;
        if t.minutes = 60 then begin
          t.minutes <- 0;
          t.hours <- (t.hours + 1) mod 24
        end
      end;
      (* update-ended flag, and the alarm when it matches *)
      t.status_c <- t.status_c lor 0x10;
      if alarm_match t then t.status_c <- t.status_c lor 0x20;
      t.uip_countdown <- 2
    done

let irq_asserted t =
  (* A flag interrupts when its enable bit in status B is set. *)
  t.status_c land t.status_b land 0x70 <> 0

let read_reg t i =
  match i with
  | 0 -> encode t t.seconds
  | 1 -> encode t t.alarm_s
  | 2 -> encode t t.minutes
  | 3 -> encode t t.alarm_m
  | 4 -> encode t t.hours
  | 5 -> encode t t.alarm_h
  | 6 -> encode t t.weekday
  | 7 -> encode t t.day
  | 8 -> encode t t.month
  | 9 -> encode t t.year
  | 10 ->
      (* UIP pulses briefly after a tick. *)
      let uip = if t.uip_countdown > 0 then 0x80 else 0x00 in
      if t.uip_countdown > 0 then t.uip_countdown <- t.uip_countdown - 1;
      uip lor (t.status_a land 0x7f)
  | 11 -> t.status_b
  | 12 ->
      (* Reading status C acknowledges all flags. *)
      let v = t.status_c land 0x70 in
      let v = if v <> 0 then v lor 0x80 else v in
      t.status_c <- 0;
      v
  | 13 -> 0x80  (* battery good, data valid *)
  | _ -> 0xff

let write_reg t i v =
  match i with
  | 0 -> t.seconds <- decode t v mod 60
  | 1 -> t.alarm_s <- decode t v mod 60
  | 2 -> t.minutes <- decode t v mod 60
  | 3 -> t.alarm_m <- decode t v mod 60
  | 4 -> t.hours <- decode t v mod 24
  | 5 -> t.alarm_h <- decode t v mod 24
  | 6 -> t.weekday <- decode t v
  | 7 -> t.day <- decode t v
  | 8 -> t.month <- decode t v
  | 9 -> t.year <- decode t v
  | 10 -> t.status_a <- v land 0x7f
  | 11 -> t.status_b <- v
  | 12 | 13 -> ()  (* read-only *)
  | _ -> ()

let index_model t =
  {
    Model.name = "mc146818-index";
    read = (fun ~width:_ ~offset:_ -> t.index);
    write = (fun ~width:_ ~offset:_ ~value -> t.index <- value land 0x7f);
  }

let data_model t =
  {
    Model.name = "mc146818-data";
    read = (fun ~width:_ ~offset:_ -> read_reg t t.index);
    write = (fun ~width:_ ~offset:_ ~value -> write_reg t t.index (value land 0xff));
  }
