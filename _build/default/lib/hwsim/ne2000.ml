let ram_base = 0x4000
let ram_size = 0x4000

(* ISR bits *)
let isr_prx = 0x01
let isr_ptx = 0x02
let isr_rdc = 0x40
let isr_rst = 0x80

type t = {
  ram : Bytes.t;
  mutable started : bool;
  mutable txp : bool;
  mutable remote_op : int;  (* rd bits: 1 read, 2 write, 4 abort *)
  mutable page : int;
  mutable pstart : int;
  mutable pstop : int;
  mutable bnry : int;
  mutable tpsr : int;
  mutable tbcr : int;
  mutable isr : int;
  mutable imr : int;
  mutable rsar : int;
  mutable rbcr : int;
  mutable rcr : int;
  mutable tcr : int;
  mutable dcr : int;
  mutable curr : int;
  par : int array;
  mutable cntr : int array;
  mutable transmitted : string list;  (* reversed *)
}

let create () =
  {
    ram = Bytes.make 0x8000 '\000';
    started = false;
    txp = false;
    remote_op = 4;
    page = 0;
    pstart = 0x46;
    pstop = 0x80;
    bnry = 0x46;
    tpsr = 0x40;
    tbcr = 0;
    isr = 0;
    imr = 0;
    rsar = 0;
    rbcr = 0;
    rcr = 0;
    tcr = 0;
    dcr = 0;
    curr = 0x46;
    par = Array.make 6 0;
    cntr = Array.make 3 0;
    transmitted = [];
  }

let irq_asserted t = t.isr land t.imr <> 0
let take_transmitted t =
  let frames = List.rev t.transmitted in
  t.transmitted <- [];
  frames

let ram_ok addr = addr >= ram_base && addr < ram_base + ram_size

let ram_get t addr = if ram_ok addr then Char.code (Bytes.get t.ram addr) else 0xff
let ram_set t addr v =
  if ram_ok addr then Bytes.set t.ram addr (Char.chr (v land 0xff))

let ram_byte t addr = ram_get t addr

(* Deliver a frame into the receive ring with its 4-byte header. *)
let deliver t frame =
  let len = String.length frame + 4 in
  let pages_needed = (len + 255) / 256 in
  let ring_pages = t.pstop - t.pstart in
  let used =
    (t.curr - t.bnry + ring_pages) mod ring_pages
  in
  if pages_needed >= ring_pages - used then false
  else begin
    let start_page = t.curr in
    let next_page =
      let n = t.curr + pages_needed in
      if n >= t.pstop then t.pstart + (n - t.pstop) else n
    in
    (* Write header + payload, wrapping at pstop. *)
    let write_byte i v =
      let page = start_page + (i / 256) in
      let page = if page >= t.pstop then t.pstart + (page - t.pstop) else page in
      ram_set t ((page * 256) + (i mod 256)) v
    in
    write_byte 0 0x01;  (* receive status: PRX *)
    write_byte 1 next_page;
    write_byte 2 (len land 0xff);
    write_byte 3 ((len lsr 8) land 0xff);
    String.iteri (fun i c -> write_byte (4 + i) (Char.code c)) frame;
    t.curr <- next_page;
    t.isr <- t.isr lor isr_prx;
    true
  end

let inject_frame t frame = t.started && deliver t frame

let transmit t =
  let addr = t.tpsr * 256 in
  let len = if t.tbcr = 0 then 0 else t.tbcr in
  let frame = String.init len (fun i -> Char.chr (ram_get t (addr + i))) in
  t.txp <- false;
  t.isr <- t.isr lor isr_ptx;
  if t.tcr land 0x06 <> 0 then
    (* Loopback mode: hand the frame straight back to the receiver. *)
    ignore (deliver t frame)
  else t.transmitted <- frame :: t.transmitted

let cmd_byte t =
  (if t.started then 0x02 else 0x01)
  lor (if t.txp then 0x04 else 0)
  lor (t.remote_op lsl 3)
  lor (t.page lsl 6)

let write_cmd t v =
  t.page <- (v lsr 6) land 0x3;
  let st = v land 0x3 in
  if st = 0x1 then t.started <- false
  else if st = 0x2 then t.started <- true;
  let rd = (v lsr 3) land 0x7 in
  if rd <> 0 then t.remote_op <- rd;
  if rd land 0x4 <> 0 then t.remote_op <- 4;
  if v land 0x04 <> 0 && t.started then begin
    t.txp <- true;
    transmit t
  end

let data_read t =
  if t.remote_op = 1 && t.rbcr > 0 then begin
    let v = ram_get t t.rsar in
    t.rsar <- t.rsar + 1;
    t.rbcr <- t.rbcr - 1;
    if t.rbcr = 0 then begin
      t.isr <- t.isr lor isr_rdc;
      t.remote_op <- 4
    end;
    v
  end
  else 0xff

let data_write t v =
  if t.remote_op = 2 && t.rbcr > 0 then begin
    ram_set t t.rsar v;
    t.rsar <- t.rsar + 1;
    t.rbcr <- t.rbcr - 1;
    if t.rbcr = 0 then begin
      t.isr <- t.isr lor isr_rdc;
      t.remote_op <- 4
    end
  end

let read t ~width ~offset =
  let byte () =
    match (t.page, offset) with
    | _, 0 -> cmd_byte t
    | 0, 3 -> t.bnry
    | 0, 4 -> 0 (* TSR: clean transmit *)
    | 0, 7 -> t.isr
    | 0, 12 -> 0x01 (* RSR *)
    | 0, 13 -> t.cntr.(0)
    | 0, 14 -> t.cntr.(1)
    | 0, 15 -> t.cntr.(2)
    | 1, n when n >= 1 && n <= 6 -> t.par.(n - 1)
    | 1, 7 -> t.curr
    | _, 16 -> data_read t
    | _, 31 ->
        t.started <- false;
        t.isr <- t.isr lor isr_rst;
        0
    | _ -> 0xff
  in
  if width = 16 && offset = 16 then
    let lo = data_read t in
    let hi = data_read t in
    lo lor (hi lsl 8)
  else byte ()

let write t ~width ~offset ~value =
  let v = value land 0xff in
  let byte () =
    match (t.page, offset) with
    | _, 0 -> write_cmd t v
    | 0, 1 -> t.pstart <- v
    | 0, 2 -> t.pstop <- v
    | 0, 3 -> t.bnry <- v
    | 0, 4 -> t.tpsr <- v
    | 0, 5 -> t.tbcr <- (t.tbcr land 0xff00) lor v
    | 0, 6 -> t.tbcr <- (t.tbcr land 0x00ff) lor (v lsl 8)
    | 0, 7 -> t.isr <- t.isr land lnot v (* write 1 to acknowledge *)
    | 0, 8 -> t.rsar <- (t.rsar land 0xff00) lor v
    | 0, 9 -> t.rsar <- (t.rsar land 0x00ff) lor (v lsl 8)
    | 0, 10 -> t.rbcr <- (t.rbcr land 0xff00) lor v
    | 0, 11 -> t.rbcr <- (t.rbcr land 0x00ff) lor (v lsl 8)
    | 0, 12 -> t.rcr <- v
    | 0, 13 -> t.tcr <- v
    | 0, 14 -> t.dcr <- v
    | 0, 15 -> t.imr <- v
    | 1, n when n >= 1 && n <= 6 -> t.par.(n - 1) <- v
    | 1, 7 -> t.curr <- v
    | _, 16 -> data_write t v
    | _, 31 -> ()
    | _ -> ()
  in
  if width = 16 && offset = 16 then begin
    data_write t (value land 0xff);
    data_write t ((value lsr 8) land 0xff)
  end
  else byte ()

let model t = { Model.name = "ne2000"; read = read t; write = write t }
