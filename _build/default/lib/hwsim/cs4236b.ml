let chip_version = 0xab

type t = {
  mutable ia : int;  (* index register, 0..31 *)
  i_regs : int array;  (* I0..I31 *)
  x_regs : int array;  (* X0..X25 *)
  mutable extended : bool;  (* the xm automaton state *)
  capture : int Queue.t;
  mutable played_rev : int list;
}

let create () =
  let t =
    {
      ia = 0;
      i_regs = Array.make 32 0;
      x_regs = Array.make 26 0;
      extended = false;
      capture = Queue.create ();
      played_rev = [];
    }
  in
  t.x_regs.(25) <- chip_version;
  t

let indexed_reg t i = t.i_regs.(i land 31)
let extended_reg t j = t.x_regs.(j mod 26)
let extended_mode t = t.extended
let queue_pcm t samples = List.iter (fun s -> Queue.push (s land 0xff) t.capture) samples
let played t = List.rev t.played_rev

(* I23 layout per the Devil specification: XA is bits 2 and 7..4
   (MSB-first fragment order: bit 2 is the top bit of the 5-bit index),
   XRAE is bit 3, ACF bit 0. *)
let xa_of_i23 v =
  let bit n = (v lsr n) land 1 in
  (bit 2 lsl 4) lor (bit 7 lsl 3) lor (bit 6 lsl 2) lor (bit 5 lsl 1) lor bit 4

let write_i23 t v =
  t.i_regs.(23) <- v land 0xff;
  if (v lsr 3) land 1 = 1 then t.extended <- true

let read t ~width:_ ~offset =
  match offset with
  | 0 -> t.ia
  | 1 ->
      if t.extended then t.x_regs.(xa_of_i23 t.i_regs.(23) mod 26)
      else t.i_regs.(t.ia)
  | 2 -> if Queue.is_empty t.capture then 0x00 else 0x01 (* data ready *)
  | 3 -> if Queue.is_empty t.capture then 0 else Queue.pop t.capture
  | _ -> 0xff

let write t ~width:_ ~offset ~value =
  let v = value land 0xff in
  match offset with
  | 0 ->
      (* Writing the control register always leaves extended mode. *)
      t.ia <- v land 0x1f;
      t.extended <- false
  | 1 ->
      if t.extended then begin
        let j = xa_of_i23 t.i_regs.(23) mod 26 in
        if j <> 25 then t.x_regs.(j) <- v  (* X25 is read-only *)
      end
      else if t.ia = 23 then write_i23 t v
      else t.i_regs.(t.ia) <- v
  | 2 -> () (* interrupt acknowledge *)
  | 3 -> t.played_rev <- v :: t.played_rev
  | _ -> ()

let model t = { Model.name = "cs4236b"; read = read t; write = write t }
