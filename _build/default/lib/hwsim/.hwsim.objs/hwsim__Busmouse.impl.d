lib/hwsim/busmouse.ml: Devil_bits Model
