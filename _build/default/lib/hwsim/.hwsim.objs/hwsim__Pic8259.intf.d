lib/hwsim/pic8259.mli: Model
