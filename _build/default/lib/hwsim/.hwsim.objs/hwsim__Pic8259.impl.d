lib/hwsim/pic8259.ml: Model Option
