lib/hwsim/permedia2.mli: Model
