lib/hwsim/piix4.ml: Bytes Ide_disk Model
