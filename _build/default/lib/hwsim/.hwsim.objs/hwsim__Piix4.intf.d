lib/hwsim/piix4.mli: Bytes Ide_disk Model
