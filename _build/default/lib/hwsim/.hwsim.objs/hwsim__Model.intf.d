lib/hwsim/model.mli:
