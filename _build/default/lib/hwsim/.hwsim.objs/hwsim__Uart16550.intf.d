lib/hwsim/uart16550.mli: Model
