lib/hwsim/ide_disk.ml: Array Bytes Char Hashtbl Model String
