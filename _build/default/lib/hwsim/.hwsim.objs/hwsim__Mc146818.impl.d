lib/hwsim/mc146818.ml: Model
