lib/hwsim/i8042.ml: Model Queue
