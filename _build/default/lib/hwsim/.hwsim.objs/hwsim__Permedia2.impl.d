lib/hwsim/permedia2.ml: Array Devil_bits List Model Queue
