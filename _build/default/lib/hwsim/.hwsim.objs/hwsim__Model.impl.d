lib/hwsim/model.ml: Array Devil_bits
