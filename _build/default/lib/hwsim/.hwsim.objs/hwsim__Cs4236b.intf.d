lib/hwsim/cs4236b.mli: Model
