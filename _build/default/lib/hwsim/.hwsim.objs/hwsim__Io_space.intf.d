lib/hwsim/io_space.mli: Devil_runtime Format Model
