lib/hwsim/mc146818.mli: Model
