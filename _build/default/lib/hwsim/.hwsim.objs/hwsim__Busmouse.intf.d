lib/hwsim/busmouse.mli: Model
