lib/hwsim/uart16550.ml: Buffer Char Model Queue String
