lib/hwsim/ide_disk.mli: Bytes Model
