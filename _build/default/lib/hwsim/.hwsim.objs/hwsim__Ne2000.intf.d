lib/hwsim/ne2000.mli: Model
