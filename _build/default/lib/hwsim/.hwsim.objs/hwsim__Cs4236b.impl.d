lib/hwsim/cs4236b.ml: Array List Model Queue
