lib/hwsim/dma8237.mli: Bytes Model
