lib/hwsim/dma8237.ml: Array Bytes Model
