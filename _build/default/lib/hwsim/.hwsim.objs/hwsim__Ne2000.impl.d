lib/hwsim/ne2000.ml: Array Bytes Char List Model String
