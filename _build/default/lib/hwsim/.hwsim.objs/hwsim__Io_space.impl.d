lib/hwsim/io_space.ml: Array Devil_runtime Format List Logs Model Printf
