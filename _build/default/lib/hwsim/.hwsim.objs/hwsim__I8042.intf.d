lib/hwsim/i8042.mli: Model
