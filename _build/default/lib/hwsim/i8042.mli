(** Behavioural model of the i8042 keyboard controller: the output
    buffer holding scancodes and command responses, the controller
    command state machine (self-test, config byte, keyboard
    enable/disable), and keyboard commands sent through the data port
    (acknowledged with 0xFA; 0xED latches the LED state). *)

type t

val create : unit -> t
val data_model : t -> Model.t
(** The data port (0x60). *)

val control_model : t -> Model.t
(** The status/command port (0x64). *)

val press : t -> int -> bool
(** A key makes: queue a scancode. False when the keyboard interface
    is disabled. *)

val leds : t -> int
val keyboard_enabled : t -> bool
val config_byte : t -> int
