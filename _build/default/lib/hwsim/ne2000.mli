(** Behavioural model of an NE2000 (DP8390) Ethernet controller.

    Implements the page-0/page-1 register file, the 16 KiB on-board
    packet RAM (byte addresses 0x4000..0x7fff), the remote-DMA engine
    behind the data port (offset 16), packet transmission with
    internal loopback, the receive ring (CURR/BNRY bookkeeping, 4-byte
    receive headers) and the reset port (offset 31).

    Frames transmitted while the TCR selects loopback are delivered
    back into the receive ring; otherwise they are appended to an
    outbound list the test harness can drain with {!take_transmitted}.
    Frames from the simulated network are injected with
    {!inject_frame}. *)

type t

val create : unit -> t
val model : t -> Model.t

val inject_frame : t -> string -> bool
(** Delivers a frame into the receive ring; false when the controller
    is stopped or the ring is full. Raises the PRX interrupt bit. *)

val take_transmitted : t -> string list
(** Frames sent to the "wire" (non-loopback), oldest first. *)

val irq_asserted : t -> bool
(** ISR & IMR nonzero. *)

val ram_byte : t -> int -> int
(** Packet RAM inspection for tests (absolute on-chip address). *)
