(** Behavioural model of the MC146818 real-time clock: the 0x70/0x71
    index/data pair, time registers (binary or BCD per status B), the
    update-in-progress bit, alarms, and the read-to-acknowledge
    interrupt flags of status C. Time advances only through
    {!tick_seconds}, keeping tests deterministic. *)

type t

val create : unit -> t
val index_model : t -> Model.t
val data_model : t -> Model.t

val set_time :
  t -> hours:int -> minutes:int -> seconds:int -> unit
(** Sets the wall-clock (binary; the register file converts per the
    configured format). *)

val tick_seconds : t -> int -> unit
(** Advances time; raises the update-ended flag, and the alarm flag
    when the alarm time is crossed. *)

val time : t -> int * int * int
val irq_asserted : t -> bool
