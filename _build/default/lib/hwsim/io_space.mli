(** The simulated I/O / memory-mapped address space.

    Devices are attached at base addresses; the exported {!Bus.t}
    dispatches accesses to the owning device and accounts for their
    cost. Single transfers and block-transfer elements are counted
    separately: the performance model charges a per-iteration CPU
    overhead to driver-level loops of single transfers but not to
    [rep]-style block transfers (paper §2.2, §4.3). *)

module Bus = Devil_runtime.Bus

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable block_ops : int;  (** block instructions issued *)
  mutable block_items : int;  (** elements moved by block transfers *)
}

type t

val create : unit -> t

val attach : t -> base:int -> size:int -> Model.t -> unit
(** Claims [base .. base+size-1] for a device. Overlapping claims raise
    [Invalid_argument]. *)

val bus : t -> Bus.t

val stats : t -> stats
val reset_stats : t -> unit

val io_ops : t -> int
(** Total I/O operations in the paper's counting: single transfers plus
    block-transfer elements. *)

val single_ops : t -> int
val pp_stats : Format.formatter -> t -> unit
