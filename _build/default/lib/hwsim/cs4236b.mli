(** Behavioural model of the Crystal CS4236B sound controller.

    Implements the paper's automata-based addressing (§2.2): offset 0
    is the index/control register (IA, 0..31); offset 1 normally
    addresses the indexed register I\[IA\], but writing I23 with the
    XRAE bit set switches offset 1 to the extended register X\[XA\]
    until the control register is written again. X25 is the read-only
    chip identification register. Offsets 2 and 3 carry the WSS status
    register and the PCM data FIFO. *)

type t

val create : unit -> t
val model : t -> Model.t

val indexed_reg : t -> int -> int
(** Direct inspection of I\[i\]. *)

val extended_reg : t -> int -> int
(** Direct inspection of X\[j\]. *)

val extended_mode : t -> bool
(** True while offset 1 addresses the extended registers. *)

val queue_pcm : t -> int list -> unit
(** Fills the capture FIFO read through the PCM data port. *)

val played : t -> int list
(** Samples written to the PCM data port, oldest first. *)

val chip_version : int
