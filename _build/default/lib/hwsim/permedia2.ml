let fifo_capacity = 32

(* Simulated time advances in 30 ns units: a posted MMIO write is one
   unit, an MMIO read (full PCI round trip) is ten. Engine bandwidth in
   framebuffer bytes per unit, and the extra cost of copies
   (read + modify + write) over fills. *)
let read_units = 10
let write_units = 1
let fill_bytes_per_unit = 17
let copy_cost_factor = 7  (* copies move 3.5x slower; factor over 2 *)

type cmd = { reg : int; value : int }

type t = {
  width : int;
  height : int;
  fb : int array;
  mutable depth : int;  (* bits per pixel *)
  mutable clip : int;
  mutable window_base : int;
  mutable raster_op : int;
  mutable fill_color : int;
  mutable rect_x : int;
  mutable rect_y : int;
  mutable rect_w : int;
  mutable rect_h : int;
  mutable copy_dx : int;
  mutable copy_dy : int;
  queue : cmd Queue.t;
  mutable busy : int;  (* ticks before the current render finishes *)
  mutable overflows : int;
  mutable ticks : int;
  mutable fb_cursor : int;
}

let create ?(width = 1024) ?(height = 768) () =
  {
    width;
    height;
    fb = Array.make (width * height) 0;
    depth = 8;
    clip = 0;
    window_base = 0;
    raster_op = 0;
    fill_color = 0;
    rect_x = 0;
    rect_y = 0;
    rect_w = 0;
    rect_h = 0;
    copy_dx = 0;
    copy_dy = 0;
    queue = Queue.create ();
    busy = 0;
    overflows = 0;
    ticks = 0;
    fb_cursor = 0;
  }

let overflows t = t.overflows
let ticks t = t.ticks
let busy_ticks_remaining t = t.busy
let depth t = t.depth

let pixel t ~x ~y =
  if x < 0 || y < 0 || x >= t.width || y >= t.height then 0
  else t.fb.((y * t.width) + x)

let set_pixel t ~x ~y v =
  if x >= 0 && y >= 0 && x < t.width && y < t.height then
    t.fb.((y * t.width) + x) <- v

let signed16 v = Devil_bits.Bitops.sign_extend ~width:16 v

let do_fill t =
  for y = t.rect_y to t.rect_y + t.rect_h - 1 do
    for x = t.rect_x to t.rect_x + t.rect_w - 1 do
      set_pixel t ~x ~y t.fill_color
    done
  done;
  (* Engine time: bandwidth-proportional plus a per-scanline setup
     cost (the rasterizer walks the rectangle line by line). *)
  (t.rect_w * t.rect_h * t.depth / 8 / fill_bytes_per_unit)
  + (t.rect_h * 5)

let do_copy t =
  (* Copy the source rectangle (destination displaced by dx/dy) with
     the scan order that tolerates overlap. *)
  let dx = t.copy_dx and dy = t.copy_dy in
  let xs = if dx > 0 then List.init t.rect_w (fun i -> t.rect_w - 1 - i)
           else List.init t.rect_w (fun i -> i)
  and ys = if dy > 0 then List.init t.rect_h (fun i -> t.rect_h - 1 - i)
           else List.init t.rect_h (fun i -> i) in
  List.iter
    (fun ry ->
      List.iter
        (fun rx ->
          let x = t.rect_x + rx and y = t.rect_y + ry in
          set_pixel t ~x ~y (pixel t ~x:(x - dx) ~y:(y - dy)))
        xs)
    ys;
  (t.rect_w * t.rect_h * t.depth / 8 * copy_cost_factor / 2
  / fill_bytes_per_unit)
  + (t.rect_h * 15)

let apply t (c : cmd) =
  match c.reg with
  | 1 ->
      t.fill_color <- c.value;
      0
  | 2 ->
      t.rect_x <- c.value land 0xffff;
      t.rect_y <- (c.value lsr 16) land 0xffff;
      t.fb_cursor <- (t.rect_y * t.width) + t.rect_x;
      0
  | 3 ->
      t.rect_w <- c.value land 0xffff;
      t.rect_h <- (c.value lsr 16) land 0xffff;
      0
  | 4 ->
      t.copy_dx <- signed16 (c.value land 0xffff);
      t.copy_dy <- signed16 ((c.value lsr 16) land 0xffff);
      0
  | 5 -> (
      match c.value land 0x3 with
      | 1 -> do_fill t
      | 2 -> do_copy t
      | _ -> 0)
  | 6 ->
      let d = c.value land 0x3f in
      if d = 8 || d = 16 || d = 24 || d = 32 then t.depth <- d;
      0
  | 8 ->
      t.clip <- c.value;
      0
  | 9 ->
      t.window_base <- c.value;
      0
  | 10 ->
      t.raster_op <- c.value land 0xf;
      0
  | _ -> 0

(* Advance simulated time: the engine works, then drains queued
   commands while it is idle. *)
let tick t units =
  t.ticks <- t.ticks + units;
  t.busy <- max 0 (t.busy - units);
  while t.busy = 0 && not (Queue.is_empty t.queue) do
    t.busy <- apply t (Queue.pop t.queue)
  done

let free_entries t = fifo_capacity - Queue.length t.queue

let mmio_read t ~width:_ ~offset =
  tick t read_units;
  match offset with
  | 0 -> free_entries t
  | 7 -> if t.busy > 0 || not (Queue.is_empty t.queue) then 1 else 0
  | _ -> 0

let mmio_write t ~width:_ ~offset ~value =
  tick t write_units;
  match offset with
  | 1 | 2 | 3 | 4 | 5 | 6 | 8 | 9 | 10 ->
      if free_entries t = 0 then t.overflows <- t.overflows + 1
      else begin
        Queue.push { reg = offset; value } t.queue;
        (* An idle engine consumes setup commands as they arrive. *)
        if t.busy = 0 then
          while t.busy = 0 && not (Queue.is_empty t.queue) do
            t.busy <- apply t (Queue.pop t.queue)
          done
      end
  | _ -> ()

let fb_read t ~width:_ ~offset:_ =
  tick t read_units;
  let v = if t.fb_cursor < Array.length t.fb then t.fb.(t.fb_cursor) else 0 in
  t.fb_cursor <- t.fb_cursor + 1;
  v

let fb_write t ~width:_ ~offset:_ ~value =
  tick t write_units;
  if t.fb_cursor < Array.length t.fb then t.fb.(t.fb_cursor) <- value;
  t.fb_cursor <- t.fb_cursor + 1

let mmio_model t =
  { Model.name = "permedia2-mmio"; read = mmio_read t; write = mmio_write t }

let fb_model t =
  { Model.name = "permedia2-fb"; read = fb_read t; write = fb_write t }
