let sector_bytes = 512
let words_per_sector = sector_bytes / 2

type phase =
  | Idle
  | Pio_read of { mutable remaining : int }  (* sectors after current buffer *)
  | Pio_write of { mutable remaining : int; mutable lba : int }
  | Dma_read of int * int  (* lba, count *)
  | Dma_write of int * int

type t = {
  sectors : int;
  store : (int, Bytes.t) Hashtbl.t;
  (* task file *)
  mutable features : int;
  mutable sector_count : int;
  mutable lba_low : int;
  mutable lba_mid : int;
  mutable lba_high : int;
  mutable drive_head : int;
  mutable error : int;
  mutable irq : bool;
  mutable irq_count : int;
  mutable irq_enabled : bool;
  mutable multiple : int;
  mutable phase : phase;
  (* PIO transfer buffer *)
  mutable buffer : int array;  (* 16-bit words *)
  mutable buf_pos : int;
  mutable next_lba : int;  (* next LBA to load into the read buffer *)
}

let create ?(sectors = 65536) () =
  {
    sectors;
    store = Hashtbl.create 1024;
    features = 0;
    sector_count = 0;
    lba_low = 0;
    lba_mid = 0;
    lba_high = 0;
    drive_head = 0xa0;
    error = 0;
    irq = false;
    irq_count = 0;
    irq_enabled = true;
    multiple = 1;
    phase = Idle;
    buffer = [||];
    buf_pos = 0;
    next_lba = 0;
  }

let set_multiple t n = t.multiple <- max 1 n
let irq_pending t = t.irq

let take_irq t =
  let was = t.irq in
  t.irq <- false;
  was

let read_sector t ~lba =
  match Hashtbl.find_opt t.store lba with
  | Some b -> Bytes.copy b
  | None -> Bytes.make sector_bytes '\000'

let write_sector t ~lba data =
  if Bytes.length data <> sector_bytes then
    invalid_arg "Ide_disk.write_sector: need exactly one sector";
  Hashtbl.replace t.store lba (Bytes.copy data)

let current_lba t =
  t.lba_low lor (t.lba_mid lsl 8) lor (t.lba_high lsl 16)
  lor ((t.drive_head land 0xf) lsl 24)

let raise_irq t =
  if t.irq_enabled then begin
    t.irq <- true;
    t.irq_count <- t.irq_count + 1
  end

let irq_count t = t.irq_count
let reset_irq_count t = t.irq_count <- 0

(* Load up to [multiple] sectors into the PIO read buffer. *)
let load_read_buffer t ~remaining =
  let n = min t.multiple remaining in
  let words = Array.make (n * words_per_sector) 0 in
  for s = 0 to n - 1 do
    let sec = read_sector t ~lba:(t.next_lba + s) in
    for w = 0 to words_per_sector - 1 do
      words.((s * words_per_sector) + w) <-
        Char.code (Bytes.get sec (2 * w))
        lor (Char.code (Bytes.get sec ((2 * w) + 1)) lsl 8)
    done
  done;
  t.next_lba <- t.next_lba + n;
  t.buffer <- words;
  t.buf_pos <- 0;
  n

let prepare_write_buffer t ~remaining =
  let n = min t.multiple remaining in
  t.buffer <- Array.make (n * words_per_sector) 0;
  t.buf_pos <- 0;
  n

let flush_write_buffer t ~lba =
  let n = Array.length t.buffer / words_per_sector in
  for s = 0 to n - 1 do
    let sec = Bytes.make sector_bytes '\000' in
    for w = 0 to words_per_sector - 1 do
      let v = t.buffer.((s * words_per_sector) + w) in
      Bytes.set sec (2 * w) (Char.chr (v land 0xff));
      Bytes.set sec ((2 * w) + 1) (Char.chr ((v lsr 8) land 0xff))
    done;
    write_sector t ~lba:(lba + s) sec
  done;
  n

let count_of t = if t.sector_count = 0 then 256 else t.sector_count

let start_command t cmd =
  t.error <- 0;
  match cmd with
  | 0x20 (* READ SECTORS *) ->
      let remaining = count_of t in
      t.next_lba <- current_lba t;
      let loaded = load_read_buffer t ~remaining in
      t.phase <- Pio_read { remaining = remaining - loaded };
      raise_irq t
  | 0x30 (* WRITE SECTORS *) ->
      let lba = current_lba t in
      let remaining = count_of t in
      let n = prepare_write_buffer t ~remaining in
      t.phase <- Pio_write { remaining = remaining - n; lba }
  | 0xc8 (* READ DMA *) ->
      t.phase <- Dma_read (current_lba t, count_of t)
  | 0xca (* WRITE DMA *) ->
      t.phase <- Dma_write (current_lba t, count_of t)
  | 0xec (* IDENTIFY *) ->
      let words = Array.make words_per_sector 0 in
      words.(0) <- 0x0040;
      words.(1) <- t.sectors / (16 * 63);  (* pseudo CHS geometry *)
      words.(3) <- 16;
      words.(6) <- 63;
      words.(60) <- t.sectors land 0xffff;
      words.(61) <- (t.sectors lsr 16) land 0xffff;
      let tag = "DEVIL SIMULATED IDE DISK" in
      String.iteri
        (fun i c ->
          let w = 27 + (i / 2) in
          if i mod 2 = 0 then words.(w) <- Char.code c lsl 8
          else words.(w) <- words.(w) lor Char.code c)
        tag;
      t.buffer <- words;
      t.buf_pos <- 0;
      t.phase <- Pio_read { remaining = 0 };
      raise_irq t
  | 0xe7 (* FLUSH CACHE *) ->
      t.phase <- Idle;
      raise_irq t
  | _ ->
      t.error <- 0x04;  (* ABRT *)
      t.phase <- Idle;
      raise_irq t

let drq t =
  match t.phase with
  | Pio_read _ -> t.buf_pos < Array.length t.buffer
  | Pio_write _ -> t.buf_pos < Array.length t.buffer
  | Idle | Dma_read _ | Dma_write _ -> false

let status_byte t =
  let bit b cond = if cond then 1 lsl b else 0 in
  bit 6 true (* DRDY *)
  lor bit 4 true (* DSC *)
  lor bit 3 (drq t)
  lor bit 0 (t.error <> 0)

let pop_word t =
  if t.buf_pos >= Array.length t.buffer then 0
  else begin
    let w = t.buffer.(t.buf_pos) in
    t.buf_pos <- t.buf_pos + 1;
    (match t.phase with
    | Pio_read st when t.buf_pos >= Array.length t.buffer ->
        if st.remaining > 0 then begin
          let n = load_read_buffer t ~remaining:st.remaining in
          st.remaining <- st.remaining - n;
          raise_irq t
        end
        else t.phase <- Idle
    | _ -> ());
    w
  end

let push_word t v =
  (match t.phase with
  | Pio_write st when t.buf_pos < Array.length t.buffer ->
      t.buffer.(t.buf_pos) <- v land 0xffff;
      t.buf_pos <- t.buf_pos + 1;
      if t.buf_pos >= Array.length t.buffer then begin
        let n = flush_write_buffer t ~lba:st.lba in
        st.lba <- st.lba + n;
        raise_irq t;
        if st.remaining > 0 then begin
          let n = prepare_write_buffer t ~remaining:st.remaining in
          st.remaining <- st.remaining - n
        end
        else t.phase <- Idle
      end
  | _ -> ())

let dma_read_pending t =
  match t.phase with Dma_read (lba, n) -> Some (lba, n) | _ -> None

let dma_write_pending t =
  match t.phase with Dma_write (lba, n) -> Some (lba, n) | _ -> None

let dma_complete t =
  t.phase <- Idle;
  raise_irq t

let cmd_read t ~width ~offset =
  match offset with
  | 0 ->
      if width >= 32 then
        let lo = pop_word t in
        let hi = pop_word t in
        lo lor (hi lsl 16)
      else pop_word t
  | 1 -> t.error
  | 2 -> t.sector_count
  | 3 -> t.lba_low
  | 4 -> t.lba_mid
  | 5 -> t.lba_high
  | 6 -> t.drive_head
  | 7 ->
      (* Reading the status register acknowledges the interrupt. *)
      t.irq <- false;
      status_byte t
  | _ -> 0xff

let cmd_write t ~width ~offset ~value =
  match offset with
  | 0 ->
      if width >= 32 then begin
        push_word t (value land 0xffff);
        push_word t ((value lsr 16) land 0xffff)
      end
      else push_word t (value land 0xffff)
  | 1 -> t.features <- value land 0xff
  | 2 -> t.sector_count <- value land 0xff
  | 3 -> t.lba_low <- value land 0xff
  | 4 -> t.lba_mid <- value land 0xff
  | 5 -> t.lba_high <- value land 0xff
  | 6 -> t.drive_head <- value land 0xff
  | 7 -> start_command t (value land 0xff)
  | _ -> ()

let ctrl_read t ~width:_ ~offset =
  match offset with
  | 0 -> status_byte t (* alternate status: no IRQ acknowledge *)
  | _ -> 0xff

let ctrl_write t ~width:_ ~offset ~value =
  match offset with
  | 0 ->
      t.irq_enabled <- value land 0x02 = 0;
      if value land 0x04 <> 0 then begin
        (* soft reset *)
        t.phase <- Idle;
        t.error <- 0;
        t.irq <- false
      end
  | _ -> ()

let command_model t =
  { Model.name = "ide-command"; read = cmd_read t; write = cmd_write t }

let control_model t =
  { Model.name = "ide-control"; read = ctrl_read t; write = ctrl_write t }
