module Bus = Devil_runtime.Bus

let log_src =
  Logs.Src.create "hwsim.bus"
    ~doc:"Simulated bus traffic (Debug level traces every transfer)"

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable block_ops : int;
  mutable block_items : int;
}

type region = { base : int; size : int; model : Model.t }

type t = { mutable regions : region list; stats : stats }

let create () =
  {
    regions = [];
    stats = { reads = 0; writes = 0; block_ops = 0; block_items = 0 };
  }

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let attach t ~base ~size model =
  let region = { base; size; model } in
  List.iter
    (fun existing ->
      if overlaps existing region then
        invalid_arg
          (Printf.sprintf "Io_space.attach: %s overlaps %s" model.Model.name
             existing.model.Model.name))
    t.regions;
  t.regions <- region :: t.regions

let find t addr =
  match
    List.find_opt
      (fun r -> addr >= r.base && addr < r.base + r.size)
      t.regions
  with
  | Some r -> r
  | None ->
      raise
        (Devil_runtime.Instance.Device_error
           (Printf.sprintf "bus fault: no device at address %#x" addr))

let dispatch_read t ~width ~addr =
  let r = find t addr in
  let v = r.model.Model.read ~width ~offset:(addr - r.base) in
  Logs.debug ~src:log_src (fun m ->
      m "%s: R%d [%#x] -> %#x" r.model.Model.name width addr v);
  v

let dispatch_write t ~width ~addr ~value =
  let r = find t addr in
  Logs.debug ~src:log_src (fun m ->
      m "%s: W%d [%#x] <- %#x" r.model.Model.name width addr value);
  r.model.Model.write ~width ~offset:(addr - r.base) ~value

let bus t : Bus.t =
  {
    Bus.read =
      (fun ~width ~addr ->
        t.stats.reads <- t.stats.reads + 1;
        dispatch_read t ~width ~addr);
    write =
      (fun ~width ~addr ~value ->
        t.stats.writes <- t.stats.writes + 1;
        dispatch_write t ~width ~addr ~value);
    read_block =
      (fun ~width ~addr ~into ->
        t.stats.block_ops <- t.stats.block_ops + 1;
        t.stats.block_items <- t.stats.block_items + Array.length into;
        Array.iteri (fun i _ -> into.(i) <- dispatch_read t ~width ~addr) into);
    write_block =
      (fun ~width ~addr ~from ->
        t.stats.block_ops <- t.stats.block_ops + 1;
        t.stats.block_items <- t.stats.block_items + Array.length from;
        Array.iter (fun value -> dispatch_write t ~width ~addr ~value) from);
  }

let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.block_ops <- 0;
  t.stats.block_items <- 0

let io_ops t = t.stats.reads + t.stats.writes + t.stats.block_items
let single_ops t = t.stats.reads + t.stats.writes

let pp_stats fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d block_ops=%d block_items=%d (io_ops=%d)" t.stats.reads
    t.stats.writes t.stats.block_ops t.stats.block_items (io_ops t)
