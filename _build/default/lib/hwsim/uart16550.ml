let fifo_depth = 16

type t = {
  rx : int Queue.t;
  tx_wire : Buffer.t;
  mutable divisor : int;
  mutable lcr : int;
  mutable ier : int;
  mutable mcr : int;
  mutable fcr : int;
  mutable scratch : int;
  mutable overrun : bool;
}

let create () =
  {
    rx = Queue.create ();
    tx_wire = Buffer.create 64;
    divisor = 12;  (* 9600 baud *)
    lcr = 0;
    ier = 0;
    mcr = 0;
    fcr = 0;
    scratch = 0;
    overrun = false;
  }

let dlab t = t.lcr land 0x80 <> 0
let loopback_enabled t = t.mcr land 0x10 <> 0
let divisor t = t.divisor
let line_control t = t.lcr

let inject t s =
  String.iter
    (fun c ->
      if Queue.length t.rx >= fifo_depth then t.overrun <- true
      else Queue.push (Char.code c) t.rx)
    s

let take_transmitted t =
  let s = Buffer.contents t.tx_wire in
  Buffer.clear t.tx_wire;
  s

let lsr_byte t =
  let bit b c = if c then 1 lsl b else 0 in
  bit 0 (not (Queue.is_empty t.rx))
  lor bit 1 t.overrun
  lor bit 5 true (* THR empty: transmission is instantaneous here *)
  lor bit 6 true

let pending_irq t =
  if t.ier land 0x01 <> 0 && not (Queue.is_empty t.rx) then Some 0x4
  else if t.ier land 0x02 <> 0 then Some 0x2 (* THR empty *)
  else None

let irq_asserted t = pending_irq t <> None

let iir_byte t =
  let id = match pending_irq t with Some id -> id | None -> 0x1 in
  let fifo = if t.fcr land 0x01 <> 0 then 0xc0 else 0x00 in
  fifo lor id

let read t ~width:_ ~offset =
  match offset with
  | 0 ->
      if dlab t then t.divisor land 0xff
      else if Queue.is_empty t.rx then 0
      else Queue.pop t.rx
  | 1 -> if dlab t then (t.divisor lsr 8) land 0xff else t.ier
  | 2 -> iir_byte t
  | 3 -> t.lcr
  | 4 -> t.mcr
  | 5 ->
      let v = lsr_byte t in
      (* Reading LSR clears the error bits. *)
      t.overrun <- false;
      v
  | 6 ->
      (* Modem status; in loopback the MCR outputs fold back in. *)
      if loopback_enabled t then
        ((t.mcr land 0x3) lsl 4) lor ((t.mcr land 0xc) lsl 4)
      else 0xb0
  | 7 -> t.scratch
  | _ -> 0xff

let write t ~width:_ ~offset ~value =
  let v = value land 0xff in
  match offset with
  | 0 ->
      if dlab t then t.divisor <- (t.divisor land 0xff00) lor v
      else if loopback_enabled t then
        (if Queue.length t.rx < fifo_depth then Queue.push v t.rx)
      else Buffer.add_char t.tx_wire (Char.chr v)
  | 1 ->
      if dlab t then t.divisor <- (t.divisor land 0x00ff) lor (v lsl 8)
      else t.ier <- v land 0x0f
  | 2 ->
      t.fcr <- v;
      if v land 0x02 <> 0 then Queue.clear t.rx;
      if v land 0x04 <> 0 then ()  (* tx fifo reset: instantaneous *)
  | 3 -> t.lcr <- v
  | 4 -> t.mcr <- v land 0x1f
  | 5 | 6 -> ()
  | 7 -> t.scratch <- v
  | _ -> ()

let model t = { Model.name = "uart16550"; read = read t; write = write t }
