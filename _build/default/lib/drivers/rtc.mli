(** MC146818 RTC drivers: reading a torn-free wall-clock time around the
    update-in-progress window, setting the clock under SET mode, alarms
    and the read-to-acknowledge interrupt flags. *)

type time = { hours : int; minutes : int; seconds : int }

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val read_time : t -> time
  (** Waits out the update-in-progress bit, then double-reads until
      stable, as real kernels do. *)

  val set_time : t -> time -> unit
  (** Halts updates (SET mode), writes the fields, resumes. *)

  val set_alarm : t -> time -> unit
  val enable_alarm_irq : t -> bool -> unit
  val pending_interrupts : t -> int
  (** Reads (and thereby acknowledges) the status-C flags. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> index_base:int -> data_base:int -> t
  val read_time : t -> time
  val set_time : t -> time -> unit
  val set_alarm : t -> time -> unit
  val enable_alarm_irq : t -> bool -> unit
  val pending_interrupts : t -> int
end
