(** NE2000 Ethernet drivers: initialization, packet transmission and
    receive-ring service through the remote-DMA engine. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init : t -> mac:string -> unit
  (** Full DP8390 bring-up: stop, configure DCR/RCR/TCR, program the
      receive ring, load the station address, clear and unmask
      interrupts, start. [mac] is 6 bytes. *)

  val init_loopback : t -> mac:string -> unit
  (** Same, but leaves the transmitter in internal-loopback mode. *)

  val station_address : t -> string
  (** Reads back the 6-byte station address (page 1). *)

  val send : t -> string -> unit
  (** Copies the frame into transmit memory via remote DMA and fires
      the transmit command. *)

  val receive : t -> string option
  (** Services the receive ring: returns the next frame, advancing
      BNRY, or [None] when the ring is empty. *)

  val ack_interrupts : t -> unit
  (** Acknowledges all pending ISR bits through the structure stubs. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val init : t -> mac:string -> unit
  val init_loopback : t -> mac:string -> unit
  val station_address : t -> string
  val send : t -> string -> unit
  val receive : t -> string option
end
