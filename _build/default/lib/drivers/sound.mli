(** CS4236B sound drivers. Volume control goes through the indexed
    registers; reading the chip version exercises the paper's
    automata-based extended-register addressing (§2.2). *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val set_volume : t -> left:int -> right:int -> unit
  (** Attenuation 0..63, 0 loudest; unmutes both channels. *)

  val mute : t -> bool -> unit

  val chip_version : t -> int
  (** Reads X25 through the I23 access automaton. *)

  val line_gain : t -> int -> unit
  (** Programs the extended line-input gain register X2. *)

  val play : t -> int list -> unit
  val record : t -> int -> int list
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val set_volume : t -> left:int -> right:int -> unit
  val mute : t -> bool -> unit
  val chip_version : t -> int
  val line_gain : t -> int -> unit
  val play : t -> int list -> unit
  val record : t -> int -> int list
end
