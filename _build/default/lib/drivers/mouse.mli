(** Logitech busmouse drivers: the Devil-based driver programs the
    generated interface (paper Figure 3); the hand-crafted driver
    mirrors the original Linux 2.2 code with its magic constants
    (paper Figure 2). *)

type state = { dx : int; dy : int; buttons : int }

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val probe : t -> bool
  (** Writes a probe pattern through the signature variable and checks
      it reads back. *)

  val init : t -> unit
  (** Selects default mode and enables interrupts. *)

  val read_state : t -> state

  val set_interrupts : t -> bool -> unit
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val probe : t -> bool
  val init : t -> unit
  val read_state : t -> state
  val set_interrupts : t -> bool -> unit
end
