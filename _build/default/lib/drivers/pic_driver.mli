(** 8259A interrupt-controller drivers. The initialization sequence is
    the paper's control-flow-serialization showcase: the generated
    structure stub writes ICW1..ICW4 in the order (and number) the
    configured values demand. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init :
    t ->
    vector_base:int ->
    single:bool ->
    with_icw4:bool ->
    cascade_map:int ->
    unit

  val set_mask : t -> int -> unit
  val mask_line : t -> int -> unit
  val unmask_line : t -> int -> unit
  val read_mask : t -> int
  val pending_requests : t -> int  (** IRR via the OCW3 selection *)

  val in_service : t -> int  (** ISR via the OCW3 selection *)

  val eoi : t -> unit  (** non-specific EOI *)

  val specific_eoi : t -> line:int -> unit
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t

  val init :
    t ->
    vector_base:int ->
    single:bool ->
    with_icw4:bool ->
    cascade_map:int ->
    unit

  val set_mask : t -> int -> unit
  val read_mask : t -> int
  val pending_requests : t -> int
  val in_service : t -> int
  val eoi : t -> unit
  val specific_eoi : t -> line:int -> unit
end
