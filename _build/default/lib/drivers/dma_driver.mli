(** 8237A DMA controller drivers. Programming a channel exercises the
    paper's register-serialization example: the 16-bit address and
    count variables are written low-byte-then-high-byte through one
    port, behind a flip-flop-reset pre-action. *)

type transfer = Read_memory | Write_memory | Verify
type mode = Demand | Single | Block | Cascade

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t
  val master_clear : t -> unit

  val program_channel :
    t ->
    channel:int ->
    address:int ->
    count:int ->
    transfer:transfer ->
    mode:mode ->
    auto_init:bool ->
    unit
  (** Masks the channel, sets its mode, writes address and count (the
      serialized 16-bit variables), then unmasks. [count] follows the
      8237 convention: bytes - 1. *)

  val mask_channel : t -> int -> unit
  val unmask_channel : t -> int -> unit
  val terminal_count_reached : t -> int -> bool
  val readback_address : t -> int -> int
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val master_clear : t -> unit

  val program_channel :
    t ->
    channel:int ->
    address:int ->
    count:int ->
    transfer:transfer ->
    mode:mode ->
    auto_init:bool ->
    unit

  val mask_channel : t -> int -> unit
  val unmask_channel : t -> int -> unit
  val terminal_count_reached : t -> int -> bool
  val readback_address : t -> int -> int
end
