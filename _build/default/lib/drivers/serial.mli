(** 16550 UART drivers: line configuration through the DLAB overlay,
    polled transmit/receive, and the modem loopback self-test. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init : t -> baud:int -> unit
  (** 8N1 at the given rate: programs the divisor through the DLAB
      overlay, restores normal access, enables the FIFOs. *)

  val configured_baud : t -> int

  val send : t -> string -> unit
  val recv : t -> max:int -> string
  val data_ready : t -> bool
  val set_loopback : t -> bool -> unit
  val self_test : t -> bool
  (** Loopback self-test: a pattern written comes back verbatim. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val init : t -> baud:int -> unit
  val send : t -> string -> unit
  val recv : t -> max:int -> string
  val data_ready : t -> bool
  val set_loopback : t -> bool -> unit
  val self_test : t -> bool
end
