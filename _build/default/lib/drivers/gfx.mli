(** Permedia2 2D drivers: the accelerated primitives of the modified
    Xfree86 server (paper §4.3) — fill rectangle and screen copy —
    over the simulated engine, with the FIFO wait loops that dominate
    short commands.

    The Devil driver has two code paths, mirroring the server the
    paper measured: for 8/16/32 bpp it programs the packed coordinate
    registers through independent device variables (one interface call
    — and one I/O operation — per variable, the +2 penalty of §4.3);
    the 24 bpp path uses the grouped structure stubs and matches the
    hand-crafted driver's operation count exactly. *)

type rect = { x : int; y : int; w : int; h : int }

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t
  val set_depth : t -> int -> unit
  val fill_rect : t -> rect -> color:int -> unit
  val copy_rect : t -> rect -> dx:int -> dy:int -> unit
  val sync : t -> unit
  (** Waits for the engine to go idle. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> mmio_base:int -> t
  val set_depth : t -> int -> unit
  val fill_rect : t -> rect -> color:int -> unit
  val copy_rect : t -> rect -> dx:int -> dy:int -> unit
  val sync : t -> unit
end
