(** i8042 keyboard drivers: controller bring-up (self-test, interface
    test), scancode polling and LED control. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init : t -> bool
  (** Self-test + interface test + enable; true when both tests pass. *)

  val poll_scancode : t -> int option
  (** The next scancode, if the output buffer holds one. *)

  val set_leds : t -> int -> bool
  (** Sends 0xED + the LED mask; true when the keyboard ACKs both. *)

  val read_config : t -> int
  val write_config : t -> int -> unit
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> data_base:int -> ctl_base:int -> t
  val init : t -> bool
  val poll_scancode : t -> int option
  val set_leds : t -> int -> bool
  val read_config : t -> int
  val write_config : t -> int -> unit
end
