lib/drivers/dma_driver.ml: Devil_ir Devil_runtime Printf
