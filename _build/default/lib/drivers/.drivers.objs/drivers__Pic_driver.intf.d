lib/drivers/pic_driver.mli: Devil_runtime
