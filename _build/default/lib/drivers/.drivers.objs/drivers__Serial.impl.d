lib/drivers/serial.ml: Array Buffer Char Devil_ir Devil_runtime String
