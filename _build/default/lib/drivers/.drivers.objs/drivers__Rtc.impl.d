lib/drivers/rtc.ml: Devil_ir Devil_runtime
