lib/drivers/net.mli: Devil_runtime
