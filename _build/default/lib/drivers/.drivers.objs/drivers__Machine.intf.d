lib/drivers/machine.mli: Devil_runtime Hwsim
