lib/drivers/sound.ml: Array Devil_ir Devil_runtime List
