lib/drivers/dma_driver.mli: Devil_runtime
