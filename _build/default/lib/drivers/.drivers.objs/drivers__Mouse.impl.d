lib/drivers/mouse.ml: Devil_ir Devil_runtime
