lib/drivers/gfx.ml: Devil_ir Devil_runtime
