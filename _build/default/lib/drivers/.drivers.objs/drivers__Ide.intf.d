lib/drivers/ide.mli: Bytes Devil_runtime
