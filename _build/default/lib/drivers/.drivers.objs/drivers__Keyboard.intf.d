lib/drivers/keyboard.mli: Devil_runtime
