lib/drivers/rtc.mli: Devil_runtime
