lib/drivers/sound.mli: Devil_runtime
