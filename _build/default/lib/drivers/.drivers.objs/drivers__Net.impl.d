lib/drivers/net.ml: Array Bytes Char Devil_ir Devil_runtime Printf String
