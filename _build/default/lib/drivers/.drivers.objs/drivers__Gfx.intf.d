lib/drivers/gfx.mli: Devil_runtime
