lib/drivers/ide.ml: Array Buffer Bytes Char Devil_ir Devil_runtime Printf String
