lib/drivers/keyboard.ml: Devil_ir Devil_runtime Option
