lib/drivers/mouse.mli: Devil_runtime
