lib/drivers/pic_driver.ml: Devil_ir Devil_runtime
