lib/drivers/serial.mli: Devil_runtime
