lib/drivers/machine.ml: Devil_runtime Devil_specs Hwsim
