lib/devil_runtime/instance.mli: Bus Devil_ir
