lib/devil_runtime/bus.mli:
