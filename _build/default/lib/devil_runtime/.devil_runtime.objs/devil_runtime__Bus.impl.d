lib/devil_runtime/bus.ml: Array Devil_bits
