lib/devil_runtime/instance.ml: Array Bus Devil_bits Devil_ir Format Fun Hashtbl List Option Printf String
