type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
  write_block : width:int -> addr:int -> from:int array -> unit;
}

let memory ?(size = 65536) () =
  let cells = Array.make size 0 in
  let clip ~width v = v land Devil_bits.Bitops.width_mask width in
  let read ~width ~addr = clip ~width cells.(addr) in
  let write ~width ~addr ~value = cells.(addr) <- clip ~width value in
  let read_block ~width ~addr ~into =
    Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into
  in
  let write_block ~width ~addr ~from =
    Array.iter (fun value -> write ~width ~addr ~value) from
  in
  { read; write; read_block; write_block }

let counting bus =
  let count = ref 0 in
  let wrapped =
    {
      read =
        (fun ~width ~addr ->
          incr count;
          bus.read ~width ~addr);
      write =
        (fun ~width ~addr ~value ->
          incr count;
          bus.write ~width ~addr ~value);
      read_block =
        (fun ~width ~addr ~into ->
          count := !count + Array.length into;
          bus.read_block ~width ~addr ~into);
      write_block =
        (fun ~width ~addr ~from ->
          count := !count + Array.length from;
          bus.write_block ~width ~addr ~from);
    }
  in
  (wrapped, fun () -> !count)
