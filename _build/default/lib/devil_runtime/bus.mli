(** The abstract bus the generated accessors drive.

    A bus knows how to perform single I/O transfers of a given width at
    an absolute address, and block (string / [rep]-style) transfers
    that repeat a transfer at one address. The hardware simulator
    provides the real implementation; {!memory} provides a trivial
    RAM-backed bus for unit tests. *)

type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
      (** Repeated input from one address, filling [into] in order —
          the Pentium [rep insw] idiom of paper §2.2. *)
  write_block : width:int -> addr:int -> from:int array -> unit;
}

val memory : ?size:int -> unit -> t
(** A bus backed by a flat array of 32-bit cells, one cell per address;
    widths only clip the stored value. Reads of untouched cells return
    0. Block transfers loop over the single-transfer operations. *)

val counting : t -> t * (unit -> int)
(** [counting bus] wraps a bus so that every single transfer and every
    block {e element} increments a counter; returns the wrapped bus and
    a function reading the count. *)
