(** Documentation generation: the paper argues a Devil specification
    "is so close to a device description that it can be used for
    documentation purposes" (§4.1). This backend renders a verified
    specification as a human-readable data sheet: the port map, a
    register map with per-bit ownership, the functional interface
    (public variables with types and behaviours), and the structures
    with their serialization orders. *)

module Ir = Devil_ir.Ir

val generate : Ir.device -> string
(** Plain-text data sheet. *)

val generate_markdown : Ir.device -> string
(** The same content as Markdown (tables for the register map). *)
