(** OCaml stub generation: the same stub semantics as the C backend,
    emitted as an OCaml module. The generated module is a functor over
    a bus environment:

    {[
      module Make (Env : sig
        val read : width:int -> addr:int -> int
        val write : width:int -> addr:int -> value:int -> unit
        val read_block : width:int -> addr:int -> into:int array -> unit
        val write_block : width:int -> addr:int -> from:int array -> unit
        val base : string -> int  (* port name -> base address *)
      end) : sig ... end
    ]}

    Getters return raw integers (signed variables sign-extended);
    setters take raw integers and perform the §3.2 range checks
    unconditionally. Enumeration cases are exposed as integer
    constants [const_<variable>_<case>]. The test suite compiles the
    generated module for the busmouse through a dune rule and checks
    it behaves exactly like the interpreting runtime, I/O operation
    for I/O operation. *)

module Ir = Devil_ir.Ir

val generate : Ir.device -> string
