module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Value = Devil_ir.Value
module Mask = Devil_bits.Mask
module Bitpat = Devil_bits.Bitpat

type ctx = { buf : Buffer.t; device : Ir.device }

let add ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let reg_cache r = Printf.sprintf "cache_%s" r
let reg_valid r = Printf.sprintf "valid_%s" r
let mem_cell v = Printf.sprintf "mem_%s" v
let scache s r = Printf.sprintf "scache_%s_%s" s r
let svalid s = Printf.sprintf "svalid_%s" s

let const_name (v : Ir.var) case =
  Printf.sprintf "const_%s_%s" (String.lowercase_ascii v.v_name)
    (String.lowercase_ascii case)

let port_width ctx (lp : Ir.located_port) =
  match Ir.find_port ctx.device lp.lp_port with
  | Some p -> p.p_width
  | None -> 8

let addr_expr (lp : Ir.located_port) =
  if lp.lp_offset = 0 then Printf.sprintf "base_%s" lp.lp_port
  else Printf.sprintf "base_%s + %d" lp.lp_port lp.lp_offset

let covered_mask (m : Mask.t) =
  List.fold_left (fun acc b -> acc lor (1 lsl b)) 0 (Mask.covered_bits m)

(* {1 Value rendering} *)

let render_const ctx (target : Ir.var) (value : Value.t) =
  ignore ctx;
  match (value, target.v_type) with
  | Value.Int n, _ -> string_of_int n
  | Value.Bool b, _ -> if b then "1" else "0"
  | Value.Enum name, ty -> (
      match Dtype.find_case ty name with
      | Some c -> (
          match Bitpat.value c.pattern with
          | Some raw -> string_of_int raw
          | None -> "0")
      | None -> "0")

let render_operand ctx (target : Ir.var) (o : Ir.operand) =
  match o with
  | Ir.O_int n -> string_of_int n
  | Ir.O_bool b -> if b then "1" else "0"
  | Ir.O_enum name -> render_const ctx target (Value.Enum name)
  | Ir.O_any -> "0"
  | Ir.O_var src -> Printf.sprintf "(get_%s ())" src
  | Ir.O_param p -> Printf.sprintf "%s" p

let label f = String.lowercase_ascii f

let emit_action ctx ~indent (a : Ir.action) =
  List.iter
    (fun (assignment : Ir.assignment) ->
      match assignment with
      | Ir.Set_var { target; value } -> (
          match Ir.find_var ctx.device target with
          | Some tv ->
              add ctx "%sset_%s %s;\n" indent target
                (render_operand ctx tv value)
          | None -> ())
      | Ir.Set_struct { target; fields } -> (
          match Ir.find_struct ctx.device target with
          | Some s ->
              let args =
                String.concat " "
                  (List.map
                     (fun fname ->
                       match List.assoc_opt fname fields with
                       | Some o -> (
                           match Ir.find_var ctx.device fname with
                           | Some fv ->
                               Printf.sprintf "~%s:(%s)" (label fname)
                                 (render_operand ctx fv o)
                           | None -> Printf.sprintf "~%s:0" (label fname))
                       | None ->
                           Printf.sprintf "~%s:(get_%s ())" (label fname) fname)
                     s.s_fields)
              in
              add ctx "%sset_%s %s;\n" indent target args
          | None -> ()))
    a

(* {1 Register accessors} *)

let emit_reg ctx (r : Ir.reg) =
  (match r.r_write with
  | Some lp ->
      add ctx "  and write_%s raw =\n" r.r_name;
      emit_action ctx ~indent:"    " r.r_pre;
      add ctx "    Env.write ~width:%d ~addr:(%s) ~value:((raw land %d) lor %d);\n"
        (port_width ctx lp) (addr_expr lp) (covered_mask r.r_mask)
        (Mask.forced_value r.r_mask);
      emit_action ctx ~indent:"    " r.r_post;
      emit_action ctx ~indent:"    " r.r_set;
      add ctx "    %s := raw;\n" (reg_cache r.r_name);
      add ctx "    %s := true\n" (reg_valid r.r_name)
  | None -> ());
  match r.r_read with
  | Some lp ->
      add ctx "  and read_%s () =\n" r.r_name;
      emit_action ctx ~indent:"    " r.r_pre;
      add ctx "    let raw = Env.read ~width:%d ~addr:(%s) in\n"
        (port_width ctx lp) (addr_expr lp);
      emit_action ctx ~indent:"    " r.r_post;
      add ctx "    %s := raw;\n" (reg_cache r.r_name);
      add ctx "    %s := true;\n" (reg_valid r.r_name);
      add ctx "    raw\n"
  | None -> ()

(* {1 Bit plumbing} *)

let gather_expr (v : Ir.var) ~(reg_expr : string -> string) =
  let parts = ref [] in
  let shift = ref (Ir.var_width v) in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          shift := !shift - w;
          parts :=
            Printf.sprintf "(((%s lsr %d) land %d) lsl %d)" (reg_expr c.c_reg)
              lo
              ((1 lsl w) - 1)
              !shift
            :: !parts)
        c.c_ranges)
    v.v_chunks;
  String.concat " lor " (List.rev !parts)

let emit_scatter ctx ~indent (v : Ir.var) ~value_expr ~img_of =
  let total = Ir.var_width v in
  let consumed = ref 0 in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          let m = (1 lsl w) - 1 in
          add ctx
            "%s%s := (!(%s) land (lnot %d)) lor ((((%s) lsr %d) land %d) lsl \
             %d);\n"
            indent (img_of c.c_reg) (img_of c.c_reg) (m lsl lo) value_expr
            (total - !consumed - w)
            m lo;
          consumed := !consumed + w)
        c.c_ranges)
    v.v_chunks

let neutral_const (v : Ir.var) =
  match v.v_behaviour.b_trigger with
  | Some { tr_write = true; tr_exempt = Some (Ir.Neutral value); _ } -> (
      match Dtype.encode v.v_type value with Ok raw -> Some raw | Error _ -> None)
  | Some { tr_write = true; tr_exempt = Some (Ir.Only value); _ } -> (
      match Dtype.encode v.v_type value with
      | Ok raw -> Some (if raw = 0 then 1 else 0)
      | Error _ -> Some 0)
  | Some _ | None -> None

let compose_base_expr ctx (r : Ir.reg) =
  let base =
    Printf.sprintf "(if !(%s) then !(%s) else 0)" (reg_valid r.r_name)
      (reg_cache r.r_name)
  in
  List.fold_left
    (fun expr (v : Ir.var) ->
      match neutral_const v with
      | None -> expr
      | Some raw ->
          let clear = ref 0 and setv = ref 0 in
          let total = Ir.var_width v in
          let consumed = ref 0 in
          List.iter
            (fun (c : Ir.chunk) ->
              List.iter
                (fun (hi, lo) ->
                  let w = hi - lo + 1 in
                  if String.equal c.c_reg r.r_name then begin
                    clear := !clear lor (((1 lsl w) - 1) lsl lo);
                    let field =
                      (raw lsr (total - !consumed - w)) land ((1 lsl w) - 1)
                    in
                    setv := !setv lor (field lsl lo)
                  end;
                  consumed := !consumed + w)
                c.c_ranges)
            v.v_chunks;
          Printf.sprintf "(((%s) land (lnot %d)) lor %d)" expr !clear !setv)
    base
    (Ir.vars_of_reg ctx.device r.r_name)

(* {1 Range checks (always on)} *)

let emit_check ctx ~indent (v : Ir.var) =
  let fail cond =
    add ctx "%sif %s then failwith \"%s: value out of range\";\n" indent cond
      v.v_name
  in
  match v.v_type with
  | Dtype.Bool -> fail "v land (lnot 1) <> 0"
  | Dtype.Int { signed = false; bits } ->
      fail (Printf.sprintf "v land (lnot %d) <> 0" ((1 lsl bits) - 1))
  | Dtype.Int { signed = true; bits } ->
      fail
        (Printf.sprintf "v < %d || v > %d"
           (-(1 lsl (bits - 1)))
           ((1 lsl (bits - 1)) - 1))
  | Dtype.Int_set { values; _ } ->
      if List.length values <= 40 then
        fail
          (Printf.sprintf "not (List.mem v [%s])"
             (String.concat "; " (List.map string_of_int values)))
  | Dtype.Enum cases ->
      let writable =
        List.filter_map
          (fun (c : Dtype.enum_case) ->
            if Dtype.writable_case c.dir then Bitpat.value c.pattern else None)
          cases
      in
      if writable <> [] then
        fail
          (Printf.sprintf "not (List.mem v [%s])"
             (String.concat "; " (List.map string_of_int writable)))

(* {1 Variable accessors} *)

let sign_adjust (v : Ir.var) expr =
  match v.v_type with
  | Dtype.Int { signed = true; bits } ->
      Printf.sprintf "(((%s) lsl %d) asr %d)" expr (63 - bits) (63 - bits)
  | _ -> expr

let regs_of ctx (v : Ir.var) =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (c : Ir.chunk) ->
      if Hashtbl.mem seen c.c_reg then None
      else begin
        Hashtbl.add seen c.c_reg ();
        Ir.find_reg ctx.device c.c_reg
      end)
    v.v_chunks

let emit_var_setter ctx (v : Ir.var) =
  if v.v_chunks = [] then begin
    add ctx "  and set_%s v =\n" v.v_name;
    emit_check ctx ~indent:"    " v;
    add ctx "    %s := v\n" (mem_cell v.v_name)
  end
  else begin
    let regs = regs_of ctx v in
    if List.exists Ir.reg_writable regs then begin
      add ctx "  and set_%s v =\n" v.v_name;
      emit_check ctx ~indent:"    " v;
      (match v.v_type with
      | Dtype.Int { signed = true; bits } ->
          add ctx "    let v = v land %d in\n" ((1 lsl bits) - 1)
      | _ -> ());
      emit_action ctx ~indent:"    " v.v_pre;
      List.iter
        (fun (r : Ir.reg) ->
          add ctx "    let img_%s = ref (%s) in\n" r.r_name
            (compose_base_expr ctx r))
        regs;
      emit_scatter ctx ~indent:"    " v ~value_expr:"v" ~img_of:(fun reg ->
          "img_" ^ reg);
      let order =
        match v.v_serial with
        | None -> List.map (fun (r : Ir.reg) -> (None, r)) regs
        | Some items ->
            List.filter_map
              (fun (i : Ir.serial_item) ->
                Option.map
                  (fun r -> (i.si_cond, r))
                  (Ir.find_reg ctx.device i.si_reg))
              items
      in
      List.iter
        (fun ((cond : Ir.serial_cond option), (r : Ir.reg)) ->
          match cond with
          | None -> add ctx "    write_%s !(img_%s);\n" r.r_name r.r_name
          | Some c ->
              let actual =
                if String.equal c.sc_var v.v_name then "v"
                else Printf.sprintf "(get_%s ())" c.sc_var
              in
              let expected =
                match Ir.find_var ctx.device c.sc_var with
                | Some cv -> render_operand ctx cv c.sc_value
                | None -> "0"
              in
              add ctx "    if %s %s %s then write_%s !(img_%s);\n" actual
                (if c.sc_negated then "<>" else "=")
                expected r.r_name r.r_name)
        order;
      (* Keep the owning structure's cache coherent, like the runtime. *)
      (match v.v_struct with
      | Some sname ->
          add ctx "    if !(%s) then begin\n" (svalid sname);
          List.iter
            (fun (r : Ir.reg) ->
              add ctx "      %s := !(img_%s);\n" (scache sname r.r_name)
                r.r_name)
            regs;
          add ctx "    end;\n"
      | None -> ());
      (* Self-referencing set actions see the value just written. *)
      List.iter
        (fun (assignment : Ir.assignment) ->
          match assignment with
          | Ir.Set_var { target; value } ->
              let expr =
                match value with
                | Ir.O_var src when String.equal src v.v_name -> "v"
                | o -> (
                    match Ir.find_var ctx.device target with
                    | Some tv -> render_operand ctx tv o
                    | None -> "0")
              in
              add ctx "    set_%s %s;\n" target expr
          | Ir.Set_struct _ -> ())
        v.v_set;
      emit_action ctx ~indent:"    " v.v_post;
      add ctx "    ()\n"
    end
  end

let emit_var_getter ctx (v : Ir.var) =
  add ctx "  and get_%s () =\n" v.v_name;
  if v.v_chunks = [] then add ctx "    !(%s)\n" (mem_cell v.v_name)
  else begin
    let fresh =
      v.v_behaviour.b_volatile
      || match v.v_behaviour.b_trigger with
         | Some { tr_read = true; _ } -> true
         | Some _ | None -> false
    in
    (match v.v_struct with
    | Some sname ->
        (* Field stub: structure cache first, then register cache. *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (c : Ir.chunk) ->
            if not (Hashtbl.mem seen c.c_reg) then begin
              Hashtbl.add seen c.c_reg ();
              add ctx
                "    let raw_%s = if !(%s) then !(%s) else if !(%s) then \
                 !(%s) else failwith \"%s: structure not read\" in\n"
                c.c_reg (svalid sname) (scache sname c.c_reg)
                (reg_valid c.c_reg) (reg_cache c.c_reg) v.v_name
            end)
          v.v_chunks
    | None ->
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (c : Ir.chunk) ->
            if not (Hashtbl.mem seen c.c_reg) then begin
              Hashtbl.add seen c.c_reg ();
              match Ir.find_reg ctx.device c.c_reg with
              | Some r when fresh && Ir.reg_readable r ->
                  add ctx "    let raw_%s = read_%s () in\n" c.c_reg c.c_reg
              | Some r when Ir.reg_readable r ->
                  add ctx
                    "    let raw_%s = if !(%s) then !(%s) else read_%s () in\n"
                    c.c_reg (reg_valid c.c_reg) (reg_cache c.c_reg) c.c_reg
              | _ ->
                  add ctx
                    "    let raw_%s = if !(%s) then !(%s) else failwith \
                     \"%s: write-only and not cached\" in\n"
                    c.c_reg (reg_valid c.c_reg) (reg_cache c.c_reg) v.v_name
            end)
          v.v_chunks);
    add ctx "    %s\n"
      (sign_adjust v (gather_expr v ~reg_expr:(fun reg -> "raw_" ^ reg)))
  end

(* {1 Structures} *)

let struct_regs ctx (s : Ir.strct) =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun fname ->
      match Ir.find_var ctx.device fname with
      | None -> []
      | Some v ->
          List.filter_map
            (fun (c : Ir.chunk) ->
              if Hashtbl.mem seen c.c_reg then None
              else begin
                Hashtbl.add seen c.c_reg ();
                Ir.find_reg ctx.device c.c_reg
              end)
            v.v_chunks)
    s.s_fields

let emit_struct ctx (s : Ir.strct) =
  let regs = struct_regs ctx s in
  if List.for_all Ir.reg_readable regs && regs <> [] then begin
    add ctx "  and get_%s () =\n" s.s_name;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "    %s := read_%s ();\n" (scache s.s_name r.r_name) r.r_name)
      regs;
    add ctx "    %s := true\n" (svalid s.s_name)
  end;
  if List.exists Ir.reg_writable regs then begin
    let params =
      String.concat " " (List.map (fun f -> "~" ^ label f) s.s_fields)
    in
    add ctx "  and set_%s %s =\n" s.s_name params;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "    let img_%s = ref (%s) in\n" r.r_name
          (compose_base_expr ctx r))
      regs;
    List.iter
      (fun fname ->
        match Ir.find_var ctx.device fname with
        | Some v ->
            emit_scatter ctx ~indent:"    " v ~value_expr:(label fname)
              ~img_of:(fun reg -> "img_" ^ reg)
        | None -> ())
      s.s_fields;
    let order =
      match s.s_serial with
      | None -> List.map (fun (r : Ir.reg) -> (None, r)) regs
      | Some items ->
          List.filter_map
            (fun (i : Ir.serial_item) ->
              Option.map
                (fun r -> (i.si_cond, r))
                (Ir.find_reg ctx.device i.si_reg))
            items
    in
    List.iter
      (fun ((cond : Ir.serial_cond option), (r : Ir.reg)) ->
        match cond with
        | None -> add ctx "    write_%s !(img_%s);\n" r.r_name r.r_name
        | Some c ->
            let actual =
              if List.mem c.sc_var s.s_fields then label c.sc_var
              else Printf.sprintf "(get_%s ())" c.sc_var
            in
            let expected =
              match Ir.find_var ctx.device c.sc_var with
              | Some cv -> render_operand ctx cv c.sc_value
              | None -> "0"
            in
            add ctx "    if %s %s %s then write_%s !(img_%s);\n" actual
              (if c.sc_negated then "<>" else "=")
              expected r.r_name r.r_name)
      order;
    (* Per-field set actions with the new values in scope. *)
    List.iter
      (fun fname ->
        match Ir.find_var ctx.device fname with
        | Some v ->
            List.iter
              (fun (assignment : Ir.assignment) ->
                match assignment with
                | Ir.Set_var { target; value } ->
                    let expr =
                      match value with
                      | Ir.O_var src when String.equal src fname -> label fname
                      | o -> (
                          match Ir.find_var ctx.device target with
                          | Some tv -> render_operand ctx tv o
                          | None -> "0")
                    in
                    add ctx "    set_%s %s;\n" target expr
                | Ir.Set_struct _ -> ())
              v.v_set
        | None -> ())
      s.s_fields;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "    %s := !(img_%s);\n" (scache s.s_name r.r_name) r.r_name)
      regs;
    add ctx "    %s := true\n" (svalid s.s_name)
  end

(* {1 Block and template stubs} *)

let emit_block ctx (v : Ir.var) =
  match v.v_chunks with
  | [ { c_reg; c_ranges = [ (hi, lo) ] } ] when v.v_behaviour.b_block -> (
      match Ir.find_reg ctx.device c_reg with
      | Some r when lo = 0 && hi = r.r_size - 1 ->
          (match r.r_read with
          | Some lp ->
              add ctx "  and read_%s_block count =\n" v.v_name;
              emit_action ctx ~indent:"    " r.r_pre;
              add ctx "    let into = Array.make count 0 in\n";
              add ctx "    Env.read_block ~width:%d ~addr:(%s) ~into;\n"
                (port_width ctx lp) (addr_expr lp);
              emit_action ctx ~indent:"    " r.r_post;
              add ctx "    into\n"
          | None -> ());
          (match r.r_write with
          | Some lp ->
              add ctx "  and write_%s_block from =\n" v.v_name;
              emit_action ctx ~indent:"    " r.r_pre;
              add ctx "    Env.write_block ~width:%d ~addr:(%s) ~from;\n"
                (port_width ctx lp) (addr_expr lp);
              emit_action ctx ~indent:"    " r.r_post;
              emit_action ctx ~indent:"    " r.r_set;
              add ctx "    ()\n"
          | None -> ())
      | Some _ | None -> ())
  | _ -> ()

let emit_template ctx (t : Ir.template) =
  let params = String.concat " " (List.map fst t.t_params) in
  let range_checks indent =
    List.iter
      (fun (p, values) ->
        if List.length values <= 64 then
          add ctx "%sif not (List.mem %s [%s]) then failwith \"%s: %s out of range\";\n"
            indent p
            (String.concat "; " (List.map string_of_int values))
            t.t_name p)
      t.t_params
  in
  (match t.t_read with
  | Some lp ->
      add ctx "  and read_%s %s =\n" t.t_name params;
      range_checks "    ";
      emit_action ctx ~indent:"    " t.t_pre;
      add ctx "    let raw = Env.read ~width:%d ~addr:(%s) in\n"
        (port_width ctx lp) (addr_expr lp);
      emit_action ctx ~indent:"    " t.t_post;
      add ctx "    raw\n"
  | None -> ());
  match t.t_write with
  | Some lp ->
      add ctx "  and write_%s %s raw =\n" t.t_name params;
      range_checks "    ";
      emit_action ctx ~indent:"    " t.t_pre;
      add ctx "    Env.write ~width:%d ~addr:(%s) ~value:((raw land %d) lor %d)\n"
        (port_width ctx lp) (addr_expr lp) (covered_mask t.t_mask)
        (Mask.forced_value t.t_mask)
  | None -> ()

(* {1 Top level} *)

let generate (device : Ir.device) =
  let ctx = { buf = Buffer.create 16384; device } in
  add ctx "(* Generated by devilc from device '%s'. Do not edit. *)\n\n"
    device.d_name;
  add ctx "[@@@warning \"-32-26-27-33-39\"]\n\n";
  add ctx "module type DEVIL_ENV = sig\n";
  add ctx "  val read : width:int -> addr:int -> int\n";
  add ctx "  val write : width:int -> addr:int -> value:int -> unit\n";
  add ctx "  val read_block : width:int -> addr:int -> into:int array -> unit\n";
  add ctx "  val write_block : width:int -> addr:int -> from:int array -> unit\n";
  add ctx "  val base : string -> int\n";
  add ctx "end\n\n";
  add ctx "module Make (Env : DEVIL_ENV) = struct\n";
  List.iter
    (fun (p : Ir.port) ->
      add ctx "  let base_%s = Env.base \"%s\"\n" p.p_name p.p_name)
    device.d_ports;
  List.iter
    (fun (r : Ir.reg) ->
      add ctx "  let %s = ref 0\n  let %s = ref false\n" (reg_cache r.r_name)
        (reg_valid r.r_name))
    device.d_regs;
  List.iter
    (fun (s : Ir.strct) ->
      List.iter
        (fun (r : Ir.reg) ->
          add ctx "  let %s = ref 0\n" (scache s.s_name r.r_name))
        (struct_regs ctx s);
      add ctx "  let %s = ref false\n" (svalid s.s_name))
    device.d_structs;
  List.iter
    (fun (v : Ir.var) ->
      if v.v_chunks = [] then add ctx "  let %s = ref 0\n" (mem_cell v.v_name))
    device.d_vars;
  (* Enum case constants. *)
  List.iter
    (fun (v : Ir.var) ->
      match v.v_type with
      | Dtype.Enum cases ->
          List.iter
            (fun (c : Dtype.enum_case) ->
              match Bitpat.value c.pattern with
              | Some raw ->
                  add ctx "  let %s = %d\n" (const_name v c.case_name) raw
              | None -> ())
            cases
      | Dtype.Bool | Dtype.Int _ | Dtype.Int_set _ -> ())
    device.d_vars;
  add ctx "\n  let rec __devil_nop () = ()\n";
  List.iter (emit_reg ctx) device.d_regs;
  List.iter
    (fun v ->
      emit_var_setter ctx v;
      emit_var_getter ctx v;
      emit_block ctx v)
    device.d_vars;
  List.iter (emit_struct ctx) device.d_structs;
  List.iter (emit_template ctx) device.d_templates;
  add ctx "end\n";
  Buffer.contents ctx.buf
