module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Value = Devil_ir.Value
module Mask = Devil_bits.Mask
module Bitpat = Devil_bits.Bitpat

type ctx = {
  buf : Buffer.t;
  device : Ir.device;
  prefix : string;
}

let add ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let upper = String.uppercase_ascii

let cache_name ctx = Printf.sprintf "%s_cache" ctx.prefix

(* {1 Naming} *)

let port_field (p : string) = Printf.sprintf "__dil_%s__" p
let reg_cache (r : string) = Printf.sprintf "cache_%s" r
let reg_valid (r : string) = Printf.sprintf "cache_%s_valid" r
let mem_field (v : string) = Printf.sprintf "mem_%s" v
let struct_cache (s : string) = Printf.sprintf "cache_%s" s

let io_in = function
  | 8 -> "inb"
  | 16 -> "inw"
  | 32 -> "inl"
  | w -> Printf.sprintf "in%d" w

let io_out = function
  | 8 -> "outb"
  | 16 -> "outw"
  | 32 -> "outl"
  | w -> Printf.sprintf "out%d" w

let port_width ctx (lp : Ir.located_port) =
  match Ir.find_port ctx.device lp.lp_port with
  | Some p -> p.p_width
  | None -> 8

let addr_expr ctx (lp : Ir.located_port) =
  if lp.lp_offset = 0 then
    Printf.sprintf "%s.%s" (cache_name ctx) (port_field lp.lp_port)
  else
    Printf.sprintf "%s.%s + %d" (cache_name ctx) (port_field lp.lp_port)
      lp.lp_offset

(* {1 Enum case macros} *)

let case_macro ctx (v : Ir.var) (c : Dtype.enum_case) =
  Printf.sprintf "%s_%s_%s" (upper ctx.prefix) (upper v.v_name)
    (upper c.case_name)

let emit_enum_macros ctx =
  List.iter
    (fun (v : Ir.var) ->
      match v.v_type with
      | Dtype.Enum cases ->
          List.iter
            (fun (c : Dtype.enum_case) ->
              match Bitpat.value c.pattern with
              | Some raw -> add ctx "#define %s 0x%xu\n" (case_macro ctx v c) raw
              | None ->
                  add ctx "/* %s: wildcard pattern %s (read match only) */\n"
                    (case_macro ctx v c)
                    (Bitpat.to_string c.pattern))
            cases
      | Dtype.Bool | Dtype.Int _ | Dtype.Int_set _ -> ())
    ctx.device.d_vars

(* {1 Value rendering} *)

let render_const ctx (target : Ir.var) (value : Value.t) =
  match (value, target.v_type) with
  | Value.Int n, _ -> Printf.sprintf "0x%xu" n
  | Value.Bool b, _ -> if b then "1u" else "0u"
  | Value.Enum name, ty -> (
      match Dtype.find_case ty name with
      | Some c -> Printf.sprintf "%s" (case_macro ctx target c)
      | None -> "0u /* unknown case */")

let render_operand ctx (target : Ir.var) (o : Ir.operand) =
  match o with
  | Ir.O_int n -> Printf.sprintf "0x%xu" n
  | Ir.O_bool b -> if b then "1u" else "0u"
  | Ir.O_enum name -> render_const ctx target (Value.Enum name)
  | Ir.O_any -> "0u /* any */"
  | Ir.O_var src -> Printf.sprintf "%s_get_%s()" ctx.prefix src
  | Ir.O_param p -> Printf.sprintf "(%s)" p

(* {1 Actions} *)

let emit_action ctx ~indent (a : Ir.action) =
  List.iter
    (fun (assignment : Ir.assignment) ->
      match assignment with
      | Ir.Set_var { target; value } -> (
          match Ir.find_var ctx.device target with
          | Some tv ->
              add ctx "%s%s_set_%s(%s);\n" indent ctx.prefix target
                (render_operand ctx tv value)
          | None -> add ctx "%s/* unknown target %s */\n" indent target)
      | Ir.Set_struct { target; fields } -> (
          match Ir.find_struct ctx.device target with
          | Some s ->
              let args =
                List.map
                  (fun fname ->
                    match List.assoc_opt fname fields with
                    | Some o -> (
                        match Ir.find_var ctx.device fname with
                        | Some fv -> render_operand ctx fv o
                        | None -> "0u")
                    | None ->
                        Printf.sprintf "%s_get_%s()" ctx.prefix fname)
                  s.s_fields
              in
              add ctx "%s%s_set_%s(%s);\n" indent ctx.prefix target
                (String.concat ", " args)
          | None -> add ctx "%s/* unknown structure %s */\n" indent target))
    a

(* {1 Register raw accessors} *)

let covered_mask (m : Mask.t) =
  List.fold_left (fun acc b -> acc lor (1 lsl b)) 0 (Mask.covered_bits m)

let emit_reg_writer ctx (r : Ir.reg) =
  match r.r_write with
  | None -> ()
  | Some lp ->
      let w = port_width ctx lp in
      add ctx "static inline void %s_write_%s(unsigned int raw)\n{\n"
        ctx.prefix r.r_name;
      emit_action ctx ~indent:"  " r.r_pre;
      let cm = covered_mask r.r_mask in
      let forced = Mask.forced_value r.r_mask in
      add ctx "  %s((raw & 0x%xu) | 0x%xu, %s);\n" (io_out w) cm forced
        (addr_expr ctx lp);
      emit_action ctx ~indent:"  " r.r_post;
      emit_action ctx ~indent:"  " r.r_set;
      add ctx "  %s.%s = raw;\n" (cache_name ctx) (reg_cache r.r_name);
      add ctx "  %s.%s = 1;\n" (cache_name ctx) (reg_valid r.r_name);
      add ctx "}\n\n"

let emit_reg_reader ctx (r : Ir.reg) =
  match r.r_read with
  | None -> ()
  | Some lp ->
      let w = port_width ctx lp in
      add ctx "static inline unsigned int %s_read_%s(void)\n{\n" ctx.prefix
        r.r_name;
      emit_action ctx ~indent:"  " r.r_pre;
      add ctx "  unsigned int raw = %s(%s);\n" (io_in w) (addr_expr ctx lp);
      emit_action ctx ~indent:"  " r.r_post;
      add ctx "  %s.%s = raw;\n" (cache_name ctx) (reg_cache r.r_name);
      add ctx "  %s.%s = 1;\n" (cache_name ctx) (reg_valid r.r_name);
      add ctx "  return raw;\n}\n\n"

(* {1 Bit plumbing expressions} *)

(* Expression extracting variable bits from per-register raw
   expressions (MSB-first). *)
let gather_expr (v : Ir.var) ~(reg_expr : string -> string) =
  let parts = ref [] in
  let shift = ref (Ir.var_width v) in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          shift := !shift - w;
          let m = (1 lsl w) - 1 in
          let part =
            Printf.sprintf "(((%s >> %d) & 0x%xu) << %d)" (reg_expr c.c_reg)
              lo m !shift
          in
          parts := part :: !parts)
        c.c_ranges)
    v.v_chunks;
  String.concat " | " (List.rev !parts)

(* Statements inserting variable bits into a register image variable
   named [img_of reg]. *)
let emit_scatter ctx ~indent (v : Ir.var) ~value_expr ~img_of =
  let total = Ir.var_width v in
  let consumed = ref 0 in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          let m = (1 lsl w) - 1 in
          let src_shift = total - !consumed - w in
          add ctx "%s%s = (%s & ~0x%xu) | ((((%s) >> %d) & 0x%xu) << %d);\n"
            indent (img_of c.c_reg) (img_of c.c_reg) (m lsl lo) value_expr
            src_shift m lo;
          consumed := !consumed + w)
        c.c_ranges)
    v.v_chunks

let neutral_const ctx (v : Ir.var) =
  match v.v_behaviour.b_trigger with
  | Some { tr_write = true; tr_exempt = Some (Ir.Neutral value); _ } -> (
      match Dtype.encode v.v_type value with Ok raw -> Some raw | Error _ -> None)
  | Some { tr_write = true; tr_exempt = Some (Ir.Only value); _ } -> (
      match Dtype.encode v.v_type value with
      | Ok raw -> Some (if raw = 0 then 1 else 0)
      | Error _ -> Some 0)
  | Some _ | None ->
      ignore ctx;
      None

(* The compose-base expression for rewriting register [r]: cached bits
   if valid, with every write-trigger sibling forced to its neutral. *)
let compose_base_expr ctx (r : Ir.reg) =
  let base =
    Printf.sprintf "(%s.%s ? %s.%s : 0u)" (cache_name ctx)
      (reg_valid r.r_name) (cache_name ctx) (reg_cache r.r_name)
  in
  let vars = Ir.vars_of_reg ctx.device r.r_name in
  List.fold_left
    (fun expr (v : Ir.var) ->
      match neutral_const ctx v with
      | None -> expr
      | Some raw ->
          (* Clear the sibling's bits, then set the neutral pattern. *)
          let clear = ref 0 and setv = ref 0 in
          let total = Ir.var_width v in
          let consumed = ref 0 in
          List.iter
            (fun (c : Ir.chunk) ->
              List.iter
                (fun (hi, lo) ->
                  let w = hi - lo + 1 in
                  if String.equal c.c_reg r.r_name then begin
                    let m = ((1 lsl w) - 1) lsl lo in
                    clear := !clear lor m;
                    let field = (raw lsr (total - !consumed - w)) land ((1 lsl w) - 1) in
                    setv := !setv lor (field lsl lo)
                  end;
                  consumed := !consumed + w)
                c.c_ranges)
            v.v_chunks;
          Printf.sprintf "((%s & ~0x%xu) | 0x%xu)" expr !clear !setv)
    base vars

(* {1 Dynamic checks} *)

let emit_write_check ctx ~indent (v : Ir.var) =
  let fail msg =
    add ctx "%s#ifdef DEVIL_DEBUG\n" indent;
    add ctx "%sif (%s) devil_check_failed(\"%s\");\n" indent msg v.v_name;
    add ctx "%s#endif\n" indent
  in
  match v.v_type with
  | Dtype.Bool -> fail "(v & ~1u) != 0u"
  | Dtype.Int { signed = false; bits } ->
      fail (Printf.sprintf "(v & ~0x%xu) != 0u" ((1 lsl bits) - 1))
  | Dtype.Int { signed = true; bits } ->
      fail
        (Printf.sprintf "(int)(v) < -%d || (int)(v) >= %d" (1 lsl (bits - 1))
           (1 lsl (bits - 1)))
  | Dtype.Int_set { values; _ } ->
      let tests =
        List.map (fun x -> Printf.sprintf "v != 0x%xu" x) values
      in
      if List.length tests <= 16 then fail (String.concat " && " tests)
  | Dtype.Enum cases ->
      let writable =
        List.filter_map
          (fun (c : Dtype.enum_case) ->
            if Dtype.writable_case c.dir then Bitpat.value c.pattern else None)
          cases
      in
      let tests = List.map (fun x -> Printf.sprintf "v != 0x%xu" x) writable in
      if tests <> [] then fail (String.concat " && " tests)

(* {1 Variable accessors} *)

let c_type_of (v : Ir.var) =
  match v.v_type with
  | Dtype.Int { signed = true; _ } -> "int"
  | Dtype.Bool | Dtype.Int _ | Dtype.Int_set _ | Dtype.Enum _ -> "unsigned int"

let sign_adjust (v : Ir.var) expr =
  match v.v_type with
  | Dtype.Int { signed = true; bits } ->
      Printf.sprintf "(((int)((%s) << %d)) >> %d)" expr (32 - bits) (32 - bits)
  | _ -> expr

let emit_var_setter ctx (v : Ir.var) =
  let regs =
    List.filter_map
      (fun (c : Ir.chunk) -> Ir.find_reg ctx.device c.c_reg)
      v.v_chunks
  in
  let seen = Hashtbl.create 4 in
  let regs =
    List.filter
      (fun (r : Ir.reg) ->
        if Hashtbl.mem seen r.r_name then false
        else begin
          Hashtbl.add seen r.r_name ();
          true
        end)
      regs
  in
  if v.v_chunks = [] then begin
    (* Memory cell. *)
    add ctx "static inline void %s_set_%s(unsigned int v)\n{\n" ctx.prefix
      v.v_name;
    add ctx "  %s.%s = v;\n}\n\n" (cache_name ctx) (mem_field v.v_name)
  end
  else if List.for_all (fun (r : Ir.reg) -> not (Ir.reg_writable r)) regs then
    ()
  else begin
    add ctx "static inline void %s_set_%s(unsigned int v)\n{\n" ctx.prefix
      v.v_name;
    emit_write_check ctx ~indent:"  " v;
    emit_action ctx ~indent:"  " v.v_pre;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "  unsigned int img_%s = %s;\n" r.r_name
          (compose_base_expr ctx r))
      regs;
    emit_scatter ctx ~indent:"  " v ~value_expr:"v" ~img_of:(fun reg ->
        Printf.sprintf "img_%s" reg);
    let order =
      match v.v_serial with
      | None -> List.map (fun (r : Ir.reg) -> (None, r)) regs
      | Some items ->
          List.filter_map
            (fun (i : Ir.serial_item) ->
              Option.map
                (fun r -> (i.si_cond, r))
                (Ir.find_reg ctx.device i.si_reg))
            items
    in
    List.iter
      (fun ((cond : Ir.serial_cond option), (r : Ir.reg)) ->
        match cond with
        | None -> add ctx "  %s_write_%s(img_%s);\n" ctx.prefix r.r_name r.r_name
        | Some c ->
            let actual =
              if String.equal c.sc_var v.v_name then "v"
              else Printf.sprintf "%s_get_%s()" ctx.prefix c.sc_var
            in
            let expected =
              match Ir.find_var ctx.device c.sc_var with
              | Some cv -> render_operand ctx cv c.sc_value
              | None -> "0u"
            in
            add ctx "  if (%s %s %s) %s_write_%s(img_%s);\n" actual
              (if c.sc_negated then "!=" else "==")
              expected ctx.prefix r.r_name r.r_name)
      order;
    emit_action ctx ~indent:"  " v.v_set;
    emit_action ctx ~indent:"  " v.v_post;
    add ctx "}\n\n"
  end

let emit_var_getter ctx (v : Ir.var) =
  if v.v_chunks = [] then begin
    add ctx "static inline unsigned int %s_get_%s(void)\n{\n" ctx.prefix
      v.v_name;
    add ctx "  return %s.%s;\n}\n\n" (cache_name ctx) (mem_field v.v_name)
  end
  else begin
    let fresh =
      v.v_behaviour.b_volatile
      || match v.v_behaviour.b_trigger with
         | Some { tr_read = true; _ } -> true
         | Some _ | None -> false
    in
    add ctx "static inline %s %s_get_%s(void)\n{\n" (c_type_of v) ctx.prefix
      v.v_name;
    (match v.v_struct with
    | Some sname ->
        (* Field stub: the structure read filled the cache. *)
        let reg_expr reg =
          Printf.sprintf "%s.%s.%s" (cache_name ctx) (struct_cache sname)
            (reg_cache reg)
        in
        add ctx "  return %s;\n" (sign_adjust v (gather_expr v ~reg_expr))
    | None ->
        let reg_expr reg =
          match Ir.find_reg ctx.device reg with
          | Some r when fresh && Ir.reg_readable r ->
              Printf.sprintf "%s_read_%s()" ctx.prefix reg
          | Some r when Ir.reg_readable r ->
              Printf.sprintf "(%s.%s ? %s.%s : %s_read_%s())" (cache_name ctx)
                (reg_valid reg) (cache_name ctx) (reg_cache reg) ctx.prefix reg
          | _ ->
              Printf.sprintf "%s.%s" (cache_name ctx) (reg_cache reg)
        in
        (* Evaluate register reads once, in chunk order. *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (c : Ir.chunk) ->
            if not (Hashtbl.mem seen c.c_reg) then begin
              Hashtbl.add seen c.c_reg ();
              add ctx "  unsigned int raw_%s = %s;\n" c.c_reg
                (reg_expr c.c_reg)
            end)
          v.v_chunks;
        add ctx "  return %s;\n"
          (sign_adjust v
             (gather_expr v ~reg_expr:(fun reg -> "raw_" ^ reg))));
    add ctx "}\n\n"
  end

(* {1 Structures} *)

let struct_regs ctx (s : Ir.strct) =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun fname ->
      match Ir.find_var ctx.device fname with
      | None -> []
      | Some v ->
          List.filter_map
            (fun (c : Ir.chunk) ->
              if Hashtbl.mem seen c.c_reg then None
              else begin
                Hashtbl.add seen c.c_reg ();
                Ir.find_reg ctx.device c.c_reg
              end)
            v.v_chunks)
    s.s_fields

let emit_struct_getter ctx (s : Ir.strct) =
  let regs = struct_regs ctx s in
  if List.for_all (fun (r : Ir.reg) -> Ir.reg_readable r) regs then begin
    add ctx "static inline void %s_get_%s(void)\n{\n" ctx.prefix s.s_name;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "  %s.%s.%s = %s_read_%s();\n" (cache_name ctx)
          (struct_cache s.s_name) (reg_cache r.r_name) ctx.prefix r.r_name)
      regs;
    add ctx "}\n\n"
  end

let emit_struct_setter ctx (s : Ir.strct) =
  let regs = struct_regs ctx s in
  if List.exists (fun (r : Ir.reg) -> Ir.reg_writable r) regs then begin
    let params =
      String.concat ", "
        (List.map (fun f -> Printf.sprintf "unsigned int %s" f) s.s_fields)
    in
    add ctx "static inline void %s_set_%s(%s)\n{\n" ctx.prefix s.s_name params;
    List.iter
      (fun (r : Ir.reg) ->
        add ctx "  unsigned int img_%s = %s;\n" r.r_name
          (compose_base_expr ctx r))
      regs;
    List.iter
      (fun fname ->
        match Ir.find_var ctx.device fname with
        | Some v ->
            emit_scatter ctx ~indent:"  " v ~value_expr:fname
              ~img_of:(fun reg -> Printf.sprintf "img_%s" reg)
        | None -> ())
      s.s_fields;
    let order =
      match s.s_serial with
      | None -> List.map (fun (r : Ir.reg) -> (None, r)) regs
      | Some items ->
          List.filter_map
            (fun (i : Ir.serial_item) ->
              Option.map
                (fun r -> (i.si_cond, r))
                (Ir.find_reg ctx.device i.si_reg))
            items
    in
    List.iter
      (fun ((cond : Ir.serial_cond option), (r : Ir.reg)) ->
        let write =
          Printf.sprintf "%s_write_%s(img_%s);" ctx.prefix r.r_name r.r_name
        in
        match cond with
        | None -> add ctx "  %s\n" write
        | Some c ->
            let actual =
              if List.mem c.sc_var s.s_fields then c.sc_var
              else Printf.sprintf "%s_get_%s()" ctx.prefix c.sc_var
            in
            let expected =
              match Ir.find_var ctx.device c.sc_var with
              | Some cv -> render_operand ctx cv c.sc_value
              | None -> "0u"
            in
            add ctx "  if (%s %s %s) %s\n" actual
              (if c.sc_negated then "!=" else "==")
              expected write)
      order;
    (* Per-field set actions, with the new values in scope. *)
    List.iter
      (fun fname ->
        match Ir.find_var ctx.device fname with
        | Some v when v.v_set <> [] ->
            List.iter
              (fun (assignment : Ir.assignment) ->
                match assignment with
                | Ir.Set_var { target; value } ->
                    let expr =
                      match value with
                      | Ir.O_var src when String.equal src fname -> fname
                      | o -> (
                          match Ir.find_var ctx.device target with
                          | Some tv -> render_operand ctx tv o
                          | None -> "0u")
                    in
                    add ctx "  %s_set_%s(%s);\n" ctx.prefix target expr
                | Ir.Set_struct _ -> ())
              v.v_set
        | Some _ | None -> ())
      s.s_fields;
    add ctx "}\n\n"
  end

(* {1 Block transfer stubs} *)

let emit_block_stubs ctx (v : Ir.var) =
  match v.v_chunks with
  | [ { c_reg; c_ranges = [ (hi, lo) ] } ] when v.v_behaviour.b_block -> (
      match Ir.find_reg ctx.device c_reg with
      | Some r when lo = 0 && hi = r.r_size - 1 ->
          let emit_one dir (lp : Ir.located_port) =
            let w = port_width ctx lp in
            if dir = `Read then begin
              add ctx
                "static inline void %s_read_%s_block(unsigned int *buf, \
                 unsigned int count)\n{\n"
                ctx.prefix v.v_name;
              emit_action ctx ~indent:"  " r.r_pre;
              add ctx "  __devil_ins%d(%s, buf, count);\n" w (addr_expr ctx lp);
              emit_action ctx ~indent:"  " r.r_post;
              add ctx "}\n\n"
            end
            else begin
              add ctx
                "static inline void %s_write_%s_block(const unsigned int \
                 *buf, unsigned int count)\n{\n"
                ctx.prefix v.v_name;
              emit_action ctx ~indent:"  " r.r_pre;
              add ctx "  __devil_outs%d(%s, buf, count);\n" w
                (addr_expr ctx lp);
              emit_action ctx ~indent:"  " r.r_post;
              add ctx "}\n\n"
            end
          in
          Option.iter (emit_one `Read) r.r_read;
          Option.iter (emit_one `Write) r.r_write
      | Some _ | None -> ())
  | _ -> ()

(* {1 Templates: indexed register stubs} *)

let emit_template_stubs ctx (t : Ir.template) =
  let params =
    String.concat ", "
      (List.map (fun (p, _) -> Printf.sprintf "unsigned int %s" p) t.t_params)
  in
  (match t.t_read with
  | Some lp ->
      let w = port_width ctx lp in
      add ctx "static inline unsigned int %s_read_%s(%s)\n{\n" ctx.prefix
        t.t_name params;
      emit_action ctx ~indent:"  " t.t_pre;
      add ctx "  return %s(%s);\n" (io_in w) (addr_expr ctx lp);
      add ctx "}\n\n"
  | None -> ());
  match t.t_write with
  | Some lp ->
      let w = port_width ctx lp in
      let params' = if params = "" then "unsigned int raw" else params ^ ", unsigned int raw" in
      add ctx "static inline void %s_write_%s(%s)\n{\n" ctx.prefix t.t_name
        params';
      emit_action ctx ~indent:"  " t.t_pre;
      let cm = covered_mask t.t_mask in
      let forced = Mask.forced_value t.t_mask in
      add ctx "  %s((raw & 0x%xu) | 0x%xu, %s);\n" (io_out w) cm forced
        (addr_expr ctx lp);
      emit_action ctx ~indent:"  " t.t_post;
      add ctx "}\n\n"
  | None -> ()

(* {1 Top level} *)

let emit_cache_struct ctx =
  add ctx "struct %s_devil_cache {\n" ctx.prefix;
  List.iter
    (fun (p : Ir.port) ->
      add ctx "  unsigned long %s;\n" (port_field p.p_name))
    ctx.device.d_ports;
  List.iter
    (fun (r : Ir.reg) ->
      add ctx "  unsigned int %s;\n  unsigned char %s;\n" (reg_cache r.r_name)
        (reg_valid r.r_name))
    ctx.device.d_regs;
  List.iter
    (fun (s : Ir.strct) ->
      add ctx "  struct {\n";
      List.iter
        (fun (r : Ir.reg) -> add ctx "    unsigned int %s;\n" (reg_cache r.r_name))
        (struct_regs ctx s);
      add ctx "  } %s;\n" (struct_cache s.s_name))
    ctx.device.d_structs;
  List.iter
    (fun (v : Ir.var) ->
      if v.v_chunks = [] then
        add ctx "  unsigned int %s;\n" (mem_field v.v_name))
    ctx.device.d_vars;
  add ctx "};\n";
  add ctx "static struct %s_devil_cache %s;\n\n" ctx.prefix (cache_name ctx)

let emit_init ctx =
  let params =
    String.concat ", "
      (List.map
         (fun (p : Ir.port) -> Printf.sprintf "unsigned long %s" p.p_name)
         ctx.device.d_ports)
  in
  add ctx "static inline void %s_init(%s)\n{\n" ctx.prefix params;
  List.iter
    (fun (p : Ir.port) ->
      add ctx "  %s.%s = %s;\n" (cache_name ctx) (port_field p.p_name) p.p_name)
    ctx.device.d_ports;
  add ctx "}\n\n"

let prologue ctx =
  add ctx "/* Generated by devilc from device '%s'. Do not edit. */\n"
    ctx.device.d_name;
  add ctx "#ifndef DEVIL_%s_H\n#define DEVIL_%s_H\n\n"
    (upper ctx.device.d_name) (upper ctx.device.d_name);
  add ctx "/* I/O primitives (inb/outb/inw/outw/inl/outl) and the string\n";
  add ctx " * variants come from the environment, e.g. <asm/io.h>. */\n";
  add ctx "#ifndef __devil_ins8\n";
  add ctx "#define __devil_ins8(port, buf, n) insb((port), (buf), (n))\n";
  add ctx "#define __devil_ins16(port, buf, n) insw((port), (buf), (n))\n";
  add ctx "#define __devil_ins32(port, buf, n) insl((port), (buf), (n))\n";
  add ctx "#define __devil_outs8(port, buf, n) outsb((port), (buf), (n))\n";
  add ctx "#define __devil_outs16(port, buf, n) outsw((port), (buf), (n))\n";
  add ctx "#define __devil_outs32(port, buf, n) outsl((port), (buf), (n))\n";
  add ctx "#endif\n";
  add ctx "#ifdef DEVIL_DEBUG\n";
  add ctx "extern void devil_check_failed(const char *what);\n";
  add ctx "#endif\n\n"

let epilogue ctx =
  add ctx "#endif /* DEVIL_%s_H */\n" (upper ctx.device.d_name)

(* Emission order must respect dependencies: pre-actions of a register
   call the setters of the variables they assign, which themselves call
   register writers. Variables and registers appear in declaration
   order, which the elaborator guarantees to be define-before-use, so a
   forward declaration pass keeps C happy. *)
let emit_forward_decls ctx =
  List.iter
    (fun (v : Ir.var) ->
      if v.v_chunks = [] then
        add ctx "static inline void %s_set_%s(unsigned int v);\n" ctx.prefix
          v.v_name
      else begin
        let regs =
          List.filter_map
            (fun (c : Ir.chunk) -> Ir.find_reg ctx.device c.c_reg)
            v.v_chunks
        in
        if List.exists Ir.reg_writable regs then
          add ctx "static inline void %s_set_%s(unsigned int v);\n" ctx.prefix
            v.v_name
      end;
      add ctx "static inline %s %s_get_%s(void);\n" (c_type_of v) ctx.prefix
        v.v_name)
    ctx.device.d_vars;
  List.iter
    (fun (s : Ir.strct) ->
      let regs = struct_regs ctx s in
      if List.for_all Ir.reg_readable regs && regs <> [] then
        add ctx "static inline void %s_get_%s(void);\n" ctx.prefix s.s_name;
      if List.exists Ir.reg_writable regs then begin
        let params =
          String.concat ", "
            (List.map (fun f -> Printf.sprintf "unsigned int %s" f) s.s_fields)
        in
        add ctx "static inline void %s_set_%s(%s);\n" ctx.prefix s.s_name
          params
      end)
    ctx.device.d_structs;
  add ctx "\n"

let generate ?prefix (device : Ir.device) =
  let prefix = Option.value prefix ~default:device.d_name in
  let ctx = { buf = Buffer.create 8192; device; prefix } in
  prologue ctx;
  emit_cache_struct ctx;
  emit_init ctx;
  emit_enum_macros ctx;
  add ctx "\n";
  emit_forward_decls ctx;
  List.iter
    (fun r ->
      emit_reg_writer ctx r;
      emit_reg_reader ctx r)
    device.d_regs;
  List.iter (emit_template_stubs ctx) device.d_templates;
  List.iter
    (fun v ->
      emit_var_setter ctx v;
      emit_var_getter ctx v;
      emit_block_stubs ctx v)
    device.d_vars;
  List.iter
    (fun s ->
      emit_struct_getter ctx s;
      emit_struct_setter ctx s)
    device.d_structs;
  epilogue ctx;
  Buffer.contents ctx.buf
