(** C stub generation: the output the paper's Devil compiler produced
    (Figure 3c). For a verified device the backend emits a header with

    - a cache structure holding the port bases, one slot per register
      and per structure, and the memory-cell variables;
    - [<dev>_get_<var>()] / [<dev>_set_<var>(v)] accessors performing
      the masked, shifted I/O, running pre/post/set actions inline;
    - [<dev>_get_<struct>()] / [<dev>_set_<struct>(...)] stubs that
      touch each register once and honour the serialization order
      (conditional items become C conditionals on the written values);
    - block-transfer stubs ([rep insw]-style string operations) for
      [block] variables;
    - optional dynamic checks under [DEVIL_DEBUG] (paper §3.2).

    The generated text is deterministic and golden-tested. *)

module Ir = Devil_ir.Ir

val generate : ?prefix:string -> Ir.device -> string
(** [generate device] returns the full header text. [prefix] overrides
    the accessor prefix (default: the device name). *)
