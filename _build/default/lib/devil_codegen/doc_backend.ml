module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Mask = Devil_bits.Mask
module Bitpat = Devil_bits.Bitpat

let buf_add = Buffer.add_string

(* Who owns each bit of a register: variable name, forced value, or
   "-" for irrelevant bits. *)
let bit_owner (device : Ir.device) (r : Ir.reg) bit =
  match Mask.bit r.r_mask bit with
  | Mask.Forced b -> if b then "=1" else "=0"
  | Mask.Irrelevant -> "-"
  | Mask.Covered -> (
      let owner =
        List.find_opt
          (fun (v : Ir.var) ->
            List.exists
              (fun (c : Ir.chunk) ->
                String.equal c.c_reg r.r_name
                && List.exists (fun (hi, lo) -> bit <= hi && bit >= lo)
                     c.c_ranges)
              v.v_chunks)
          device.d_vars
      in
      match owner with Some v -> v.v_name | None -> "?")

let access_string (r : Ir.reg) =
  match (r.r_read, r.r_write) with
  | Some _, Some _ -> "rw"
  | Some _, None -> "r "
  | None, Some _ -> " w"
  | None, None -> "--"

let point_string = function
  | Some (lp : Ir.located_port) ->
      Printf.sprintf "%s+%d" lp.lp_port lp.lp_offset
  | None -> "-"

let behaviour_string (v : Ir.var) =
  let b = v.v_behaviour in
  let parts =
    (if b.b_volatile then [ "volatile" ] else [])
    @ (match b.b_trigger with
      | Some { tr_read = true; tr_write = true; _ } -> [ "trigger" ]
      | Some { tr_read = true; _ } -> [ "read trigger" ]
      | Some { tr_write = true; tr_exempt; _ } ->
          [
            (match tr_exempt with
            | Some (Ir.Neutral value) ->
                Printf.sprintf "write trigger (neutral %s)"
                  (Devil_ir.Value.to_string value)
            | Some (Ir.Only value) ->
                Printf.sprintf "write trigger (for %s)"
                  (Devil_ir.Value.to_string value)
            | None -> "write trigger");
          ]
      | Some _ | None -> [])
    @ if b.b_block then [ "block" ] else []
  in
  match parts with [] -> "parameter (cached)" | _ -> String.concat ", " parts

let type_string (v : Ir.var) =
  Format.asprintf "%a" Dtype.pp v.v_type

let chunks_string (v : Ir.var) =
  match v.v_chunks with
  | [] -> "(memory cell)"
  | chunks ->
      String.concat " # "
        (List.map
           (fun (c : Ir.chunk) ->
             let ranges =
               String.concat ","
                 (List.map
                    (fun (hi, lo) ->
                      if hi = lo then string_of_int hi
                      else Printf.sprintf "%d..%d" hi lo)
                    c.c_ranges)
             in
             Printf.sprintf "%s[%s]" c.c_reg ranges)
           chunks)

type style = Text | Markdown

let render style (device : Ir.device) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> buf_add b s; buf_add b "\n") fmt in
  let h1 s = match style with
    | Text ->
        line "%s" s;
        line "%s" (String.make (String.length s) '=')
    | Markdown -> line "# %s" s
  in
  let h2 s = match style with
    | Text ->
        line "";
        line "%s" s;
        line "%s" (String.make (String.length s) '-')
    | Markdown ->
        line "";
        line "## %s" s
  in
  h1 (Printf.sprintf "Device %s" device.d_name);
  line "";
  line "Generated from the Devil specification; the specification is the";
  line "authoritative reference (paper section 4.1).";

  h2 "Ports";
  (match style with
  | Markdown ->
      line "| port | width | offsets |";
      line "|---|---|---|"
  | Text -> ());
  List.iter
    (fun (p : Ir.port) ->
      let offsets =
        String.concat "," (List.map string_of_int p.p_offsets)
      in
      match style with
      | Text -> line "  %-10s %2d-bit  offsets {%s}" p.p_name p.p_width offsets
      | Markdown ->
          line "| `%s` | %d-bit | {%s} |" p.p_name p.p_width offsets)
    device.d_ports;
  List.iter
    (fun (name, ty) ->
      line "  configuration parameter %s : %s" name
        (Format.asprintf "%a" Dtype.pp ty))
    device.d_consts;

  h2 "Register map";
  (match style with
  | Markdown ->
      line "| register | acc | read at | write at | bit 7..0 |";
      line "|---|---|---|---|---|"
  | Text -> ());
  List.iter
    (fun (r : Ir.reg) ->
      let bits =
        String.concat " | "
          (List.init r.r_size (fun i -> bit_owner device r (r.r_size - 1 - i)))
      in
      match style with
      | Text ->
          line "  %-16s %s  r:%-8s w:%-8s" r.r_name (access_string r)
            (point_string r.r_read) (point_string r.r_write);
          if r.r_size <= 8 then line "      [%s]" bits;
          if r.r_pre <> [] then line "      pre-actions: %d" (List.length r.r_pre)
      | Markdown ->
          line "| `%s` | %s | %s | %s | %s |" r.r_name
            (String.trim (access_string r))
            (point_string r.r_read) (point_string r.r_write)
            (if r.r_size <= 8 then bits else Printf.sprintf "%d bits" r.r_size))
    device.d_regs;
  List.iter
    (fun (t : Ir.template) ->
      let params =
        String.concat ", "
          (List.map
             (fun (n, vs) -> Printf.sprintf "%s in {%d values}" n (List.length vs))
             t.t_params)
      in
      match style with
      | Text -> line "  %-16s parameterized (%s)" (t.t_name ^ "(...)") params
      | Markdown ->
          line "| `%s(...)` | %s | %s | %s | parameterized: %s |" t.t_name
            "rw" (point_string t.t_read) (point_string t.t_write) params)
    device.d_templates;

  h2 "Functional interface (public device variables)";
  (match style with
  | Markdown ->
      line "| variable | bits | type | behaviour |";
      line "|---|---|---|---|"
  | Text -> ());
  let serial_string (items : Ir.serial_item list) =
    String.concat "; "
      (List.map
         (fun (i : Ir.serial_item) ->
           match i.si_cond with
           | None -> i.si_reg
           | Some c ->
               Printf.sprintf "[if %s %s ...] %s" c.sc_var
                 (if c.sc_negated then "!=" else "==")
                 i.si_reg)
         items)
  in
  List.iter
    (fun (v : Ir.var) ->
      match style with
      | Text ->
          line "  %-20s %-24s : %s" v.v_name (chunks_string v) (type_string v);
          line "      %s" (behaviour_string v);
          (match v.v_serial with
          | Some items -> line "      serialized as: %s" (serial_string items)
          | None -> ())
      | Markdown ->
          let serial =
            match v.v_serial with
            | Some items -> " — serialized as: " ^ serial_string items
            | None -> ""
          in
          line "| `%s` | `%s` | `%s` | %s%s |" v.v_name (chunks_string v)
            (type_string v) (behaviour_string v) serial)
    (Ir.public_vars device);

  let privates =
    List.filter (fun (v : Ir.var) -> v.v_private) device.d_vars
  in
  if privates <> [] then begin
    h2 "Private state (not part of the interface)";
    List.iter
      (fun (v : Ir.var) ->
        line "  %s = %s : %s" v.v_name (chunks_string v) (type_string v))
      privates
  end;

  if device.d_structs <> [] then begin
    h2 "Structures";
    List.iter
      (fun (s : Ir.strct) ->
        line "  %s { %s }" s.s_name (String.concat ", " s.s_fields);
        match s.s_serial with
        | None -> ()
        | Some items ->
            let item_str (i : Ir.serial_item) =
              match i.si_cond with
              | None -> i.si_reg
              | Some c ->
                  Printf.sprintf "[if %s %s ...] %s" c.sc_var
                    (if c.sc_negated then "!=" else "==")
                    i.si_reg
            in
            line "      serialized as: %s"
              (String.concat "; " (List.map item_str items)))
      device.d_structs
  end;
  Buffer.contents b

let generate device = render Text device
let generate_markdown device = render Markdown device
