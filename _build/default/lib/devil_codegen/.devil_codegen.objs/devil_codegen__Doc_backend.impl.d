lib/devil_codegen/doc_backend.ml: Buffer Devil_bits Devil_ir Format List Printf String
