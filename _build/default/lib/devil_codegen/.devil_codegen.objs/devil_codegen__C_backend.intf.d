lib/devil_codegen/c_backend.mli: Devil_ir
