lib/devil_codegen/doc_backend.mli: Devil_ir
