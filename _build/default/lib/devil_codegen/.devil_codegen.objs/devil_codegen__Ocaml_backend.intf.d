lib/devil_codegen/ocaml_backend.mli: Devil_ir
