lib/devil_codegen/ocaml_backend.ml: Buffer Devil_bits Devil_ir Hashtbl List Option Printf String
