(* Tests for the runtime backend (Devil_runtime.Instance): caching,
   trigger-neutral composition, structure reads, serialization order,
   actions, memory cells, block transfers and the section 3.2 dynamic
   checks. Most tests run against a recording bus that logs every
   transfer. *)

module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Check = Devil_check.Check
module Value = Devil_ir.Value

type event = R of int | W of int * int  (* addr, value *)

let recording_bus () =
  let log = ref [] in
  let cells = Hashtbl.create 16 in
  let read ~width:_ ~addr =
    log := R addr :: !log;
    Option.value (Hashtbl.find_opt cells addr) ~default:0
  in
  let write ~width:_ ~addr ~value =
    log := W (addr, value) :: !log;
    Hashtbl.replace cells addr value
  in
  let bus =
    {
      Bus.read;
      write;
      read_block =
        (fun ~width ~addr ~into ->
          Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into);
      write_block =
        (fun ~width ~addr ~from ->
          Array.iter (fun value -> write ~width ~addr ~value) from);
    }
  in
  (bus, (fun () -> List.rev !log), (fun addr v -> Hashtbl.replace cells addr v))

let compile src =
  match Check.compile src with
  | Ok d -> d
  | Error diags ->
      Alcotest.fail
        (Format.asprintf "bad test spec:@.%a" Devil_syntax.Diagnostics.pp diags)

let make ?(debug = true) ?(interpret = false) src =
  let device = compile ("device d (base : bit[8] port @ {0..3}) {" ^ src ^ "}") in
  let bus, log, poke = recording_bus () in
  (Instance.create ~debug ~interpret device ~bus ~bases:[ ("base", 0) ], log, poke)

let event =
  Alcotest.testable
    (fun fmt -> function
      | R a -> Format.fprintf fmt "R[%d]" a
      | W (a, v) -> Format.fprintf fmt "W[%d]=%#x" a v)
    ( = )

let check_log = Alcotest.(check (list event))

let test_idempotent_caching () =
  let inst, log, _ =
    make
      "register r = base @ 0 : bit[8];
       variable v = r[3..0] : int(4); variable w = r[7..4] : int(4);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  Instance.set inst "v" (Value.Int 3);
  (* First write: sibling w unknown, composed as 0. *)
  Instance.set inst "w" (Value.Int 5);
  (* Second write reuses the cached v bits. *)
  (match Instance.get inst "v" with
  | Value.Int 3 -> ()  (* from cache: no extra read *)
  | v -> Alcotest.fail (Value.to_string v));
  check_log "write compose from cache" [ W (0, 0x03); W (0, 0x53) ] (log ())

let test_volatile_rereads () =
  let inst, log, poke =
    make
      "register r = base @ 0 : bit[8]; variable v = r, volatile : int(8);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 7;
  (match Instance.get inst "v" with Value.Int 7 -> () | _ -> Alcotest.fail "first");
  poke 0 9;
  (match Instance.get inst "v" with Value.Int 9 -> () | _ -> Alcotest.fail "second");
  check_log "two device reads" [ R 0; R 0 ] (log ())

let test_trigger_neutral_composition () =
  (* Rewriting a register never replays a sibling's trigger value. *)
  let inst, log, _ =
    make
      "register r = base @ 0 : bit[8];
       variable go = r[0], write trigger except STAY :
         { FIRE => '1', STAY => '0', BUSY <= '1', QUIET <= '0' };
       variable param = r[7..1] : int(7);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  Instance.set inst "go" (Value.Enum "FIRE");
  (* param write must encode STAY (0) for go, not the cached FIRE. *)
  Instance.set inst "param" (Value.Int 0x7f);
  check_log "neutral used" [ W (0, 0x01); W (0, 0xfe) ] (log ())

let test_structure_reads_once () =
  (* The Figure 1 semantics: one I/O read per register, fields from the
     cache; y_high is read only once for dy and buttons. *)
  let inst, log, poke =
    make
      "register h = base @ 0 : bit[8];
       register l = base @ 1 : bit[8];
       structure s = {
         variable a = h[3..0] # l[3..0], volatile : int(8);
         variable b = h[7..4], volatile : int(4);
         variable c = l[7..4], volatile : int(4);
       };
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 0xa5;
  poke 1 0x3c;
  Instance.get_struct inst "s";
  (match Instance.get inst "a" with
  | Value.Int 0x5c -> ()
  | v -> Alcotest.fail ("a = " ^ Value.to_string v));
  (match Instance.get inst "b" with
  | Value.Int 0xa -> ()
  | v -> Alcotest.fail ("b = " ^ Value.to_string v));
  (match Instance.get inst "c" with
  | Value.Int 0x3 -> ()
  | v -> Alcotest.fail ("c = " ^ Value.to_string v));
  check_log "exactly two reads" [ R 0; R 1 ] (log ())

let test_field_read_without_struct_read () =
  let inst, _, _ =
    make
      "register h = base @ 0 : bit[8];
       structure s = { variable a = h, volatile : int(8); };
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  match Instance.get inst "a" with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "stale field read allowed"

let test_pre_action_order () =
  (* The Busmouse pattern: reading x_low writes the index first. *)
  let inst, log, poke =
    make
      "register idx = write base @ 1, mask '1..00000' : bit[8];
       private variable i = idx[6..5] : int(2);
       register x = read base @ 0, pre {i = 2}, mask '....****' : bit[8];
       variable v = x[7..4], volatile : int(4);
       register w0 = write base @ 0 : bit[8]; variable vw = w0 : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 0xb0;
  (match Instance.get inst "v" with
  | Value.Int 0xb -> ()
  | v -> Alcotest.fail (Value.to_string v));
  check_log "index write then data read" [ W (1, 0x80 lor (2 lsl 5)); R 0 ] (log ())

let test_serialized_variable () =
  (* The 8237 pattern: flip-flop reset, then low byte, then high. *)
  let inst, log, _ =
    make
      "register ffr = write base @ 2 : bit[8];
       private variable ff = ffr, write trigger : int(8);
       register lo = base @ 0, pre {ff = *} : bit[8];
       register hi = base @ 0 : bit[8];
       variable x = hi # lo : int(16) serialized as { lo; hi };
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  Instance.set inst "x" (Value.Int 0xbeef);
  check_log "flip-flop, low, high"
    [ W (2, 0); W (0, 0xef); W (0, 0xbe) ]
    (log ())

let test_conditional_serialization () =
  (* The 8259 pattern: the emitted sequence depends on written values. *)
  let src =
    "register a = write base @ 0, mask '......0.' : bit[8];
     register b = write base @ 1 : bit[8];
     register c = write base @ 2 : bit[8];
     structure s = {
       variable f = a[0] : bool;
       variable g = a[7..2] : int(6);
       variable h = b : int(8);
       variable k = c : int(8);
     } serialized as { a; b; if (f == true) c; };
     register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  let inst, log, _ = make src in
  Instance.set_struct inst "s"
    [ ("f", Value.Bool false); ("g", Value.Int 0); ("h", Value.Int 1);
      ("k", Value.Int 2) ];
  check_log "c skipped" [ W (0, 0); W (1, 1) ] (log ());
  let inst2, log2, _ = make src in
  Instance.set_struct inst2 "s"
    [ ("f", Value.Bool true); ("g", Value.Int 0); ("h", Value.Int 1);
      ("k", Value.Int 2) ];
  check_log "c written" [ W (0, 1); W (1, 1); W (2, 2) ] (log2 ())

let test_memory_cells_and_set_actions () =
  let inst, log, _ =
    make
      "private variable xm : bool;
       register r = base @ 0, set {xm = true} : bit[8];
       variable v = r : int(8);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  Instance.set inst "v" (Value.Int 5);
  check_log "one write, no I/O for the memory cell" [ W (0, 5) ] (log ())

let test_dynamic_checks () =
  let inst, _, poke =
    make
      "register r = base @ 0 : bit[8];
       variable v = r[1..0] : int{0,1,2};
       variable rest = r[7..2] : int(6);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  (* Write outside the range type: always an error (encode fails). *)
  (match Instance.set inst "v" (Value.Int 3) with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "range violation accepted");
  (* Read check (debug mode): device delivers a value outside the set. *)
  poke 0 0x03;
  match Instance.get inst "v" with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "bad device value accepted in debug mode"

let test_private_refused () =
  let inst, _, _ =
    make
      "register idx = write base @ 1, mask '1..00000' : bit[8];
       private variable i = idx[6..5] : int(2);
       register x = read base @ 0, pre {i = 0}, mask '....****' : bit[8];
       variable v = x[7..4], volatile : int(4);
       register w0 = write base @ 0 : bit[8]; variable vw = w0 : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  match Instance.set inst "i" (Value.Int 1) with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "private variable written from outside"

let test_write_only_get_uses_cache () =
  let inst, log, _ =
    make
      "register r = write base @ 0 : bit[8]; variable v = r : int(8);
       register r0 = read base @ 0 : bit[8]; variable v0 = r0, volatile : int(8);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  (match Instance.get inst "v" with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "uncached write-only read allowed");
  Instance.set inst "v" (Value.Int 0x42);
  (match Instance.get inst "v" with
  | Value.Int 0x42 -> ()
  | v -> Alcotest.fail (Value.to_string v));
  check_log "only the write hit the bus" [ W (0, 0x42) ] (log ())

let test_block_transfers () =
  let inst, log, _ =
    make
      "register r = base @ 0 : bit[8];
       variable v = r, trigger, volatile, block : int(8);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  Instance.write_block inst "v" [| 1; 2; 3 |];
  let back = Instance.read_block inst "v" ~count:2 in
  Alcotest.(check int) "last written wins" 3 back.(0);
  check_log "five transfers at one address"
    [ W (0, 1); W (0, 2); W (0, 3); R 0; R 0 ]
    (log ())

let test_indexed_access () =
  let inst, log, _ =
    make
      "register idx = write base @ 0 : bit[8];
       private variable ia = idx : int(8);
       register T(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];
       register T3 = T(3);
       variable v = T3, volatile : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  ignore (Instance.read_indexed inst ~template:"T" ~args:[ 7 ]);
  Instance.write_indexed inst ~template:"T" ~args:[ 9 ] 0x55;
  (match Instance.read_indexed inst ~template:"T" ~args:[ 99 ] with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "out-of-range index accepted");
  check_log "index set before each access"
    [ W (0, 7); R 1; W (0, 9); W (1, 0x55) ]
    (log ())

(* Regression: writing an idempotent variable that shares a register
   with a [volatile] sibling must not write the sibling's stale cached
   bits back to the device. When the register can be re-read without
   side effects, the composing write re-reads it first. *)
let run_volatile_sibling_refresh ~interpret () =
  let inst, log, poke =
    make ~interpret
      "register r = base @ 0 : bit[8];
       variable v = r[3..0] : int(4);
       variable s = r[7..4], volatile : int(4);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 0x20;
  Instance.set inst "v" (Value.Int 3);
  (* The device flips the volatile nibble behind the cache. *)
  poke 0 0x93;
  Instance.set inst "v" (Value.Int 5);
  (match Instance.get inst "s" with
  | Value.Int 9 -> ()
  | v -> Alcotest.fail ("volatile nibble clobbered: " ^ Value.to_string v));
  check_log "re-read before each composing write"
    [ R 0; W (0, 0x23); R 0; W (0, 0x95); R 0 ]
    (log ())

(* The refresh must NOT happen when a sibling has a read trigger: the
   re-read would fire the side effect. The stale-cache compose is the
   only safe base there. *)
let run_no_refresh_with_read_trigger ~interpret () =
  let inst, log, poke =
    make ~interpret
      "register r = base @ 0 : bit[8];
       variable v = r[2..0] : int(3);
       variable s = r[5..3], volatile : int(3);
       variable g = r[7..6], read trigger : int(2);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 0xff;
  Instance.set inst "v" (Value.Int 5);
  check_log "no side-effecting re-read" [ W (0, 0x05) ] (log ())

let test_invalidate_cache () =
  let inst, log, poke =
    make
      "register r = base @ 0 : bit[8]; variable v = r : int(8);
       register o = base @ 1 : bit[8]; variable vo = o : int(8);
       register p = base @ 2 : bit[8]; variable vp = p : int(8);
       register q = base @ 3 : bit[8]; variable vq = q : int(8);"
  in
  poke 0 1;
  ignore (Instance.get inst "v");
  ignore (Instance.get inst "v");
  Instance.invalidate_cache inst;
  ignore (Instance.get inst "v");
  check_log "re-read after invalidation" [ R 0; R 0 ] (log ())

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "runtime"
    [
      ( "caching",
        [
          case "idempotent variables cached" test_idempotent_caching;
          case "volatile variables re-read" test_volatile_rereads;
          case "trigger neutral composition" test_trigger_neutral_composition;
          case "write-only reads from cache" test_write_only_get_uses_cache;
          case "invalidate_cache" test_invalidate_cache;
          case "volatile sibling refreshed (compiled)"
            (run_volatile_sibling_refresh ~interpret:false);
          case "volatile sibling refreshed (interpreted)"
            (run_volatile_sibling_refresh ~interpret:true);
          case "read trigger forbids refresh (compiled)"
            (run_no_refresh_with_read_trigger ~interpret:false);
          case "read trigger forbids refresh (interpreted)"
            (run_no_refresh_with_read_trigger ~interpret:true);
        ] );
      ( "structures",
        [
          case "registers read once" test_structure_reads_once;
          case "field read needs struct read" test_field_read_without_struct_read;
          case "conditional serialization" test_conditional_serialization;
        ] );
      ( "actions",
        [
          case "pre-action ordering" test_pre_action_order;
          case "serialized variable writes" test_serialized_variable;
          case "memory cells and set actions" test_memory_cells_and_set_actions;
        ] );
      ( "interface",
        [
          case "dynamic checks" test_dynamic_checks;
          case "private variables refused" test_private_refused;
          case "block transfers" test_block_transfers;
          case "indexed registers" test_indexed_access;
        ] );
    ]
