(* Differential property suite: the compiled access-plan engine
   (Devil_runtime.Plan, the default) against the interpreting engine
   (Instance.create ~interpret:true), the oracle.

   For every bundled specification, random sequences of driver
   operations — variable get/set, structure read/write, block and wide
   transfers, indexed register access, cache invalidation — are run on
   two instances of the same device bound to two identically seeded
   memory buses. The engines must produce identical outcomes per
   operation (same value, or the same Device_error message, or the same
   Not_found / Invalid_argument / Bus_fault) AND an identical
   observability trace: every bus transfer, register access, cache
   hit/miss, action and serialization event, in the same order with the
   same payloads. The trace comparison is what makes the property
   strong — a compiled path that reads a register one extra time, or
   caches where the interpreter does not, fails even when the returned
   values agree.

   DEVIL_QCHECK_COUNT scales the iteration count (default 60 sequences
   per spec; the acceptance run uses 500). *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Monitor = Devil_runtime.Monitor
module Specs = Devil_specs.Specs

let qcount d =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> d)
  | None -> d

(* {1 The operation vocabulary} *)

type op =
  | Get of string
  | Set of string * Value.t
  | Get_struct of string
  | Set_struct of string * (string * Value.t) list
  | Read_block of string * int
  | Write_block of string * int array
  | Read_wide of string * int
  | Write_wide of string * int * int
  | Read_indexed of string * int list
  | Write_indexed of string * int list * int
  | Invalidate

let pp_value v = Value.to_string v

let pp_op = function
  | Get n -> "get " ^ n
  | Set (n, v) -> Printf.sprintf "set %s := %s" n (pp_value v)
  | Get_struct n -> "get_struct " ^ n
  | Set_struct (n, fs) ->
      Printf.sprintf "set_struct %s {%s}" n
        (String.concat "; "
           (List.map (fun (f, v) -> f ^ " = " ^ pp_value v) fs))
  | Read_block (n, c) -> Printf.sprintf "read_block %s count:%d" n c
  | Write_block (n, d) ->
      Printf.sprintf "write_block %s [%s]" n
        (String.concat ";" (Array.to_list (Array.map string_of_int d)))
  | Read_wide (n, s) -> Printf.sprintf "read_wide %s scale:%d" n s
  | Write_wide (n, s, v) -> Printf.sprintf "write_wide %s scale:%d %d" n s v
  | Read_indexed (t, a) ->
      Printf.sprintf "read_indexed %s(%s)" t
        (String.concat "," (List.map string_of_int a))
  | Write_indexed (t, a, v) ->
      Printf.sprintf "write_indexed %s(%s) := %d" t
        (String.concat "," (List.map string_of_int a))
        v
  | Invalidate -> "invalidate_cache"

(* {1 Per-device generation universe} *)

(* Values that mostly belong to the type, with a sprinkle of wrong-kind
   and out-of-range values so the dynamic-check error paths are
   differentially exercised too. *)
let gen_value (ty : Dtype.t) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  let bogus =
    oneof
      [
        map (fun n -> Value.Int n) (oneofl [ -1; 1 lsl 20; 257 ]);
        return (Value.Bool true);
        return (Value.Enum "NO_SUCH_CASE");
      ]
  in
  let good =
    match ty with
    | Dtype.Bool -> map (fun b -> Value.Bool b) bool
    | Dtype.Int { signed; bits } ->
        let hi = (1 lsl min bits 16) - 1 in
        if signed then map (fun n -> Value.Int n) (int_range (-(hi / 2)) (hi / 2))
        else map (fun n -> Value.Int n) (int_range 0 hi)
    | Dtype.Int_set { values; _ } ->
        if values = [] then return (Value.Int 0)
        else map (fun v -> Value.Int v) (oneofl values)
    | Dtype.Enum cases ->
        if cases = [] then return (Value.Enum "EMPTY")
        else
          map
            (fun (c : Dtype.enum_case) -> Value.Enum c.case_name)
            (oneofl cases)
  in
  frequency [ (9, good); (1, bogus) ]

let gen_op (device : Ir.device) : op QCheck.Gen.t =
  let open QCheck.Gen in
  let pub_vars = Ir.public_vars device in
  let pub_structs = Ir.public_structs device in
  let block_vars =
    List.filter (fun (v : Ir.var) -> v.v_behaviour.b_block) device.d_vars
  in
  let templates = device.Ir.d_templates in
  let var_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (3, map (fun () -> Get v.v_name) unit);
          (3, map (fun value -> Set (v.v_name, value)) (gen_value v.v_type));
        ])
      pub_vars
  in
  let struct_ops =
    List.concat_map
      (fun (s : Ir.strct) ->
        let fields =
          List.filter_map (fun f -> Ir.find_var device f) s.s_fields
        in
        let gen_fields =
          (* A random sub-assignment of the fields, occasionally with a
             field that does not belong to the structure. *)
          let field_gen (v : Ir.var) =
            map
              (fun (keep, value) ->
                if keep then Some (v.v_name, value) else None)
              (pair bool (gen_value v.v_type))
          in
          map
            (fun (assigned, rogue) ->
              let assigned = List.filter_map Fun.id assigned in
              if rogue then ("not_a_field", Value.Int 0) :: assigned
              else assigned)
            (pair (flatten_l (List.map field_gen fields)) (frequency [ (19, return false); (1, return true) ]))
        in
        [
          (2, map (fun () -> Get_struct s.s_name) unit);
          (2, map (fun fs -> Set_struct (s.s_name, fs)) gen_fields);
        ])
      pub_structs
  in
  let block_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (1, map (fun c -> Read_block (v.v_name, c)) (int_range 0 6));
          ( 1,
            map
              (fun l -> Write_block (v.v_name, Array.of_list l))
              (list_size (int_range 0 6) (int_range 0 0xffff)) );
          (1, map (fun s -> Read_wide (v.v_name, s)) (oneofl [ 1; 2; 4 ]));
          ( 1,
            map
              (fun (s, value) -> Write_wide (v.v_name, s, value))
              (pair (oneofl [ 1; 2; 4 ]) (int_range 0 0xffff)) );
        ])
      block_vars
  in
  let indexed_ops =
    List.concat_map
      (fun (tp : Ir.template) ->
        let gen_args =
          flatten_l
            (List.map
               (fun (_, legal) ->
                 frequency
                   [
                     (9, oneofl legal);
                     (1, return 997 (* out of every declared range *));
                   ])
               tp.t_params)
        in
        [
          (1, map (fun args -> Read_indexed (tp.t_name, args)) gen_args);
          ( 1,
            map
              (fun (args, v) -> Write_indexed (tp.t_name, args, v))
              (pair gen_args (int_range 0 0xffff)) );
        ])
      templates
  in
  let all =
    var_ops @ struct_ops @ block_ops @ indexed_ops
    @ [ (1, return Invalidate) ]
  in
  frequency all

(* {1 Running one scenario on both engines} *)

type outcome =
  | O_unit
  | O_value of Value.t
  | O_int of int
  | O_array of int array
  | O_error of string

let pp_outcome = function
  | O_unit -> "()"
  | O_value v -> pp_value v
  | O_int n -> string_of_int n
  | O_array a ->
      "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]"
  | O_error m -> "error: " ^ m

let run_op inst op : outcome =
  try
    match op with
    | Get n -> O_value (Instance.get inst n)
    | Set (n, v) ->
        Instance.set inst n v;
        O_unit
    | Get_struct n ->
        Instance.get_struct inst n;
        O_unit
    | Set_struct (n, fs) ->
        Instance.set_struct inst n fs;
        O_unit
    | Read_block (n, count) -> O_array (Instance.read_block inst n ~count)
    | Write_block (n, data) ->
        Instance.write_block inst n data;
        O_unit
    | Read_wide (n, scale) -> O_int (Instance.read_wide inst n ~scale)
    | Write_wide (n, scale, v) ->
        Instance.write_wide inst n ~scale v;
        O_unit
    | Read_indexed (template, args) ->
        O_int (Instance.read_indexed inst ~template ~args)
    | Write_indexed (template, args, v) ->
        Instance.write_indexed inst ~template ~args v;
        O_unit
    | Invalidate ->
        Instance.invalidate_cache inst;
        O_unit
  with
  | Instance.Device_error m -> O_error ("device: " ^ m)
  | Bus.Bus_fault m -> O_error ("bus: " ^ m)
  | Not_found -> O_error "Not_found"
  | Invalid_argument m -> O_error ("invalid: " ^ m)

(* Two instances of the same device over two identically pre-seeded
   memory buses, each observed by its own trace. *)
let build_engine ~interpret ~debug ~seed (device : Ir.device) bases =
  let raw = Bus.memory ~size:4096 () in
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  for addr = 0 to 2047 do
    raw.Bus.write ~width:32 ~addr ~value:(Random.State.int rng 0x10000)
  done;
  let trace = Trace.create ~capacity:200_000 () in
  let bus = Bus.observed ~trace raw in
  let inst = Instance.create ~debug ~label:"diff" ~trace ~interpret device ~bus ~bases in
  (inst, trace)

let bases_for (device : Ir.device) =
  let next = ref 16 in
  List.map
    (fun (p : Ir.port) ->
      let maxoff = List.fold_left max 0 p.p_offsets in
      let b = !next in
      next := !next + maxoff + 16;
      (p.p_name, b))
    device.Ir.d_ports

let explain_trace_divergence ta tb =
  let ea = Trace.events ta and eb = Trace.events tb in
  let rec first_diff i = function
    | [], [] -> "traces equal?"
    | a :: _, [] ->
        Format.asprintf "event %d only in compiled: %a" i Trace.pp_event a
    | [], b :: _ ->
        Format.asprintf "event %d only in interpreter: %a" i Trace.pp_event b
    | a :: ra, b :: rb ->
        if a = b then first_diff (i + 1) (ra, rb)
        else
          Format.asprintf "event %d differs:@.  compiled:    %a@.  interpreter: %a"
            i Trace.pp_event a Trace.pp_event b
  in
  first_diff 0 (ea, eb)

let diff_property name (device : Ir.device) =
  let bases = bases_for device in
  let gen =
    QCheck.Gen.(
      triple (int_bound 0xffff) bool (list_size (int_range 1 30) (gen_op device)))
  in
  let print (seed, debug, ops) =
    Printf.sprintf "seed:%d debug:%b\n%s" seed debug
      (String.concat "\n" (List.map pp_op ops))
  in
  let shrink (seed, debug, ops) =
    QCheck.Iter.map
      (fun ops -> (seed, debug, ops))
      (QCheck.Shrink.list ops)
  in
  let arb = QCheck.make ~print ~shrink gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "compiled = interpreter on %s" name)
    ~count:(qcount 60) arb
    (fun (seed, debug, ops) ->
      let compiled, tc = build_engine ~interpret:false ~debug ~seed device bases in
      let interp, ti = build_engine ~interpret:true ~debug ~seed device bases in
      List.iteri
        (fun i op ->
          let oc = run_op compiled op in
          let oi = run_op interp op in
          if oc <> oi then
            QCheck.Test.fail_reportf
              "op %d (%s): compiled %s, interpreter %s" i (pp_op op)
              (pp_outcome oc) (pp_outcome oi))
        ops;
      let ec = Trace.events tc and ei = Trace.events ti in
      if ec <> ei then
        QCheck.Test.fail_reportf "trace divergence: %s"
          (explain_trace_divergence tc ti);
      (* Third oracle: the online protocol monitor re-derives the
         interface disciplines from the IR alone; a clean run must
         produce zero violations. *)
      let mon = Monitor.create ~devices:[ ("diff", device) ] in
      Monitor.feed_all mon ec;
      (match Monitor.violations mon with
      | [] -> ()
      | v :: _ ->
          QCheck.Test.fail_reportf "monitor: %a (of %d violation(s))"
            Monitor.pp_violation v
            (Monitor.violation_count mon));
      (* Post-condition: every statically known register holds the same
         cached raw on both engines. *)
      List.iter
        (fun (r : Ir.reg) ->
          let c = Instance.cached_raw compiled r.r_name in
          let i = Instance.cached_raw interp r.r_name in
          if c <> i then
            QCheck.Test.fail_reportf "cached_raw %s: compiled %s, interpreter %s"
              r.r_name
              (match c with Some x -> string_of_int x | None -> "-")
              (match i with Some x -> string_of_int x | None -> "-"))
        device.Ir.d_regs;
      true)

let devices =
  [
    ("busmouse", Specs.busmouse ());
    ("ne2000", Specs.ne2000 ());
    ("ide", Specs.ide ());
    ("piix4_ide", Specs.piix4_ide ());
    ("dma8237", Specs.dma8237 ());
    ("pic8259", Specs.pic8259 ~master:true ());
    ("cs4236b", Specs.cs4236b ());
    ("permedia2", Specs.permedia2 ());
    ("uart16550", Specs.uart16550 ());
    ("mc146818", Specs.mc146818 ());
    ("i8042", Specs.i8042 ());
  ]

let () =
  Alcotest.run "plan_diff"
    [
      ( "differential",
        List.map
          (fun (name, device) ->
            QCheck_alcotest.to_alcotest (diff_property name device))
          devices );
    ]
