(* The generated harness battery (lib/specharness, DESIGN.md §14).

   Everything under test here is derived from the compiled IR and its
   site universe with zero per-spec harness code:

   - the site-aware QCheck differential: generated valid operation
     sequences must behave identically on the compiled and interpreting
     engines, with identical traces, identical cached raws and zero
     monitor violations, for every bundled spec;
   - the generated coverage obligations: running them (plus a small
     random battery) must reach the full register-coverage gate (>= 90%,
     empirically 100%) on every spec, including the extension devices
     uart16550 and mc146818 that the hand-written faultcamp workloads
     never covered;
   - the generated fault campaign: scheduled injections over the
     workload's busiest sites must hold the recovery invariant (fired
     transients fully absorbed by the policy stack, no exception
     escapes), and weakening the stack (attempts:1) must produce a
     violation that Explore.shrink minimizes to a single decision —
     the self-test that the campaign can actually find and shrink bugs;
   - the per-direction register coverage breakout (read + write totals
     partition the register universe).

   DEVIL_QCHECK_COUNT scales the differential sequence counts. *)

module Sites = Devil_ir.Sites
module Coverage = Devil_runtime.Coverage
module Opgen = Specharness.Opgen
module Diffbat = Specharness.Diffbat
module Faultbat = Specharness.Faultbat
module Battery = Specharness.Battery

let qcount d =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> d)
  | None -> d

let devices = Battery.all_devices ()

(* {1 The generated differential property, per spec} *)

let diff_tests =
  List.map
    (fun (name, device) ->
      QCheck_alcotest.to_alcotest
        (Diffbat.qcheck_test ~count:(qcount 25) ~name device))
    devices

(* {1 Obligations and the coverage gate, per spec} *)

(* One battery run per spec, shared by the coverage and fault checks
   below (the battery is deterministic). *)
let batteries =
  lazy
    (List.map
       (fun (name, device) -> (name, Battery.run ~qcount:3 ~name device))
       devices)

let battery name = List.assoc name (Lazy.force batteries)

let coverage_case (name, device) =
  Alcotest.test_case (name ^ " generated coverage >= 90%") `Slow (fun () ->
      let r = battery name in
      let cov = r.Battery.bt_coverage in
      let pct = Coverage.reg_percent cov in
      if pct < 90.0 then
        Alcotest.failf "%s: generated register coverage %.1f%% < 90%%:@.%a"
          name pct
          (fun fmt () -> Coverage.pp_missed fmt cov)
          ();
      (* The battery really did run generated work in every layer. *)
      Alcotest.(check bool) "has obligations" true (r.Battery.bt_obligations > 0);
      Alcotest.(check bool) "ran sequences" true (r.Battery.bt_ops > 0);
      Alcotest.(check (list string)) "no divergences" [] r.Battery.bt_divergences;
      (* And the obligations are derivable for any device: at least one
         per readable or writable public variable. *)
      let eligible =
        List.filter
          (fun v -> Opgen.readable device v || Opgen.writable device v)
          (Devil_ir.Ir.public_vars device)
      in
      Alcotest.(check bool)
        "one obligation per reachable public var" true
        (r.Battery.bt_obligations >= List.length eligible))

let direction_case (name, _device) =
  Alcotest.test_case (name ^ " per-direction breakout") `Quick (fun () ->
      let r = (battery name).Battery.bt_coverage in
      Alcotest.(check int)
        "read + write totals partition the register universe"
        r.Coverage.rp_reg_total
        (r.Coverage.rp_read_total + r.Coverage.rp_write_total);
      Alcotest.(check int)
        "read + write covered partition covered registers"
        r.Coverage.rp_reg_covered
        (r.Coverage.rp_read_covered + r.Coverage.rp_write_covered);
      (* Directional percentages are consistent with the aggregate. *)
      if r.Coverage.rp_reg_total > 0 then begin
        let lo = min (Coverage.read_percent r) (Coverage.write_percent r) in
        let hi = max (Coverage.read_percent r) (Coverage.write_percent r) in
        let agg = Coverage.reg_percent r in
        Alcotest.(check bool)
          "aggregate between directional extremes" true
          (agg >= lo -. 1e-6 && agg <= hi +. 1e-6)
      end)

(* {1 The generated fault campaign, per spec} *)

let fault_case (name, _device) =
  Alcotest.test_case (name ^ " fault campaign holds invariants") `Slow
    (fun () ->
      let f = (battery name).Battery.bt_fault in
      Alcotest.(check bool) "explored choices" true (f.Faultbat.fb_choices > 0);
      Alcotest.(check bool) "ran schedules" true (f.Faultbat.fb_runs > 1);
      (match f.Faultbat.fb_violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: %d violation(s), e.g. %s (minimized: %s)" name
            (List.length f.Faultbat.fb_violations)
            v.Faultbat.fv_detail v.Faultbat.fv_schedule);
      (* Injections actually landed: every campaign must demonstrate
         at least one recovered transient. *)
      Alcotest.(check bool) "recovered at least once" true
        (f.Faultbat.fb_recovered > 0))

(* The self-test: with the retry budget cut to a single attempt, a
   fired transient is no longer absorbed — the campaign must find the
   violation and shrink it to a single-decision schedule. *)
let shrink_self_test =
  Alcotest.test_case "weakened policy: violation found and minimized" `Slow
    (fun () ->
      let device = Devil_specs.Specs.uart16550 () in
      let f = Faultbat.campaign ~attempts:1 ~depth:2 ~sites_per_dir:1 device in
      Alcotest.(check bool) "found at least one violation" true
        (f.Faultbat.fb_violations <> []);
      List.iter
        (fun (v : Faultbat.violation) ->
          Alcotest.(check bool)
            "minimized schedule mentions a transient decision" true
            (let s = v.Faultbat.fv_schedule in
             let has sub =
               let n = String.length sub and m = String.length s in
               let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
               go 0
             in
             has "transient"))
        f.Faultbat.fb_violations)

(* {1 Site metadata consistency}

   The generator layer leans on the Sites enrichment; pin its
   contract for every spec. *)

let metadata_case (name, device) =
  Alcotest.test_case (name ^ " site metadata") `Quick (fun () ->
      List.iter
        (fun site ->
          match (site, Sites.site_access site) with
          | (Sites.S_reg _ | S_template _ | S_var _), None ->
              Alcotest.failf "directional site %s has no access"
                (Sites.site_id site)
          | (Sites.S_bits _ | S_behaviour _ | S_action _ | S_serial _), Some _
            ->
              Alcotest.failf "directionless site %s has an access"
                (Sites.site_id site)
          | _ -> ())
        (Sites.universe device);
      List.iter
        (fun v ->
          if Opgen.writable device v then
            Alcotest.(check bool)
              (Printf.sprintf "writable %s has a canonical corpus" v.Devil_ir.Ir.v_name)
              true
              (Sites.canonical_writes v <> []))
        (Devil_ir.Ir.public_vars device))

let () =
  Alcotest.run "harness"
    [
      ("generated differential", diff_tests);
      ("site metadata", List.map metadata_case devices);
      ("generated coverage", List.map coverage_case devices);
      ("direction breakout", List.map direction_case devices);
      ("generated fault campaign", List.map fault_case devices);
      ("shrink self-test", [ shrink_self_test ]);
    ]
