(* The bounded exhaustive exploration stack (DESIGN.md §12): the
   generic engine (enumeration order, prunes, resume, shrinking) on
   synthetic run functions, the Policy decision points it drives, and
   the campaign layer end to end — clean drivers explore clean, and
   the seeded regression is found, shrunk to one decision and
   reproduced byte-identically from its committed tape fixture. *)

module Explore = Devil_runtime.Explore
module Excamp = Explorecamp.Excamp
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Trace_export = Devil_runtime.Trace_export

let case name f = Alcotest.test_case name `Quick f

(* {1 Engine: synthetic run functions}

   The choice alphabet is two opaque tokens; run functions fabricate
   outcomes so every structural property is exact. *)

let choices = [ "a"; "b" ]

let d slot choice = { Explore.slot; choice }

(* Every schedule feasible, every end state distinct, full horizon. *)
let all_distinct sched =
  {
    Explore.oc_ok = true;
    oc_detail = "ok";
    oc_fired = List.length sched;
    oc_state = Hashtbl.hash sched;
    oc_horizon = (fun _ -> max_int);
  }

let collect visited sched _ = visited := sched :: !visited

let test_enumeration_count () =
  let r =
    Explore.explore ~depth:3 ~budget:2 ~choices ~run:all_distinct ()
  in
  (* base 1; size-1: 3 slots x 2 choices = 6; size-2: ordered slot
     pairs (0,1) (0,2) (1,2) x 2 x 2 choices = 12. *)
  Alcotest.(check int) "every schedule within the bound runs" 19 r.rp_runs;
  Alcotest.(check int) "all states distinct" 19 r.rp_distinct;
  Alcotest.(check int) "nothing pruned" 0 r.rp_pruned;
  Alcotest.(check int) "nothing infeasible" 0 r.rp_infeasible;
  Alcotest.(check int) "no violations" 0 (List.length r.rp_violations)

let test_enumeration_order () =
  let visited = ref [] in
  ignore
    (Explore.explore ~depth:3 ~budget:2 ~choices ~run:all_distinct
       ~on_run:(collect visited) ());
  let visited = List.rev !visited in
  let rec check = function
    | x :: (y :: _ as rest) ->
        Alcotest.(check bool)
          "visit order is the engine's schedule order" true
          (Explore.compare_schedules ~choices x y < 0);
        check rest
    | _ -> ()
  in
  check visited;
  (* Prefix-closed: every proper prefix of a visited schedule was
     visited before it. *)
  List.iteri
    (fun i s ->
      match List.rev s with
      | _ :: tl ->
          let prefix = List.rev tl in
          let j =
            Option.get
              (List.find_index (fun v -> v = prefix) visited)
          in
          Alcotest.(check bool) "prefix runs first" true (j < i)
      | [] -> ())
    visited

let test_dedup () =
  let constant_state sched =
    { (all_distinct sched) with Explore.oc_state = 0 }
  in
  let r =
    Explore.explore ~depth:3 ~budget:2 ~choices ~run:constant_state ()
  in
  (* Every size-1 schedule collapses into the base fingerprint, so
     nothing of size 2 is ever attempted. *)
  Alcotest.(check int) "only base + size-1 run" 7 r.rp_runs;
  Alcotest.(check int) "six subtrees deduped" 6 r.rp_deduped;
  Alcotest.(check int) "one distinct state" 1 r.rp_distinct

let test_feasibility_cut () =
  (* Decisions at slot >= 2 never fire (the workload's traffic ends). *)
  let run sched =
    let fired =
      List.length (List.filter (fun x -> x.Explore.slot < 2) sched)
    in
    { (all_distinct sched) with Explore.oc_fired = fired }
  in
  let r = Explore.explore ~depth:3 ~budget:2 ~choices ~run () in
  Alcotest.(check int) "infeasible runs detected" 10 r.rp_infeasible;
  Alcotest.(check int) "infeasible schedules still count as runs" 19
    r.rp_runs

let test_horizon_prune () =
  let run sched =
    { (all_distinct sched) with Explore.oc_horizon = (fun _ -> 1) }
  in
  let r = Explore.explore ~depth:3 ~budget:2 ~choices ~run () in
  (* Only slot 0 is ever offered: base + two size-1 schedules. *)
  Alcotest.(check int) "slots beyond the horizon never run" 3 r.rp_runs;
  Alcotest.(check int) "candidates skipped by the horizon" 12 r.rp_pruned

let test_resume_equivalence () =
  let full = ref [] in
  let r_full =
    Explore.explore ~depth:3 ~budget:2 ~choices ~run:all_distinct
      ~on_run:(collect full) ()
  in
  let full = List.rev !full in
  Alcotest.(check bool) "rp_last is the final schedule" true
    (r_full.rp_last = Some (List.nth full (List.length full - 1)));
  (* Resume from a mid-walk schedule: the continuation must visit
     exactly the suffix strictly after it (prefix reruns aside). *)
  let k = 7 in
  let resume_after = List.nth full k in
  let resumed = ref [] in
  ignore
    (Explore.explore ~depth:3 ~budget:2 ~choices ~run:all_distinct
       ~resume_after ~on_run:(collect resumed) ());
  let resumed = List.rev !resumed in
  let expected_suffix =
    List.filteri (fun i _ -> i > k) full
  in
  let suffix =
    let extra = List.length resumed - List.length expected_suffix in
    Alcotest.(check bool) "only prefix reruns are added" true (extra >= 0);
    List.filteri (fun i _ -> i >= extra) resumed
  in
  Alcotest.(check bool) "resume continues exactly after the cut" true
    (suffix = expected_suffix)

let test_shrink_to_one_decision () =
  (* Failure cause: an "x" decision at slot >= 5; pads are noise. *)
  let runs = ref 0 in
  let run sched =
    incr runs;
    let causal =
      List.exists
        (fun q -> q.Explore.choice = "x" && q.Explore.slot >= 5)
        sched
    in
    {
      (all_distinct sched) with
      Explore.oc_ok = not causal;
      oc_detail = (if causal then "boom" else "ok");
    }
  in
  let failing = [ d 1 "pad"; d 6 "x"; d 9 "pad" ] in
  let minimized, attempts = Explore.shrink ~run failing in
  Alcotest.(check bool) "pads dropped, slot binary-searched to minimum"
    true
    (minimized = [ d 5 "x" ]);
  Alcotest.(check int) "attempt count reported" !runs attempts

let test_shrink_passing_unchanged () =
  let sched = [ d 0 "a" ] in
  let minimized, _ = Explore.shrink ~run:all_distinct sched in
  Alcotest.(check bool) "a passing schedule is returned unchanged" true
    (minimized = sched)

(* {1 Policy decision points} *)

let test_decider_forces_poll () =
  Fun.protect ~finally:Policy.clear_decider @@ fun () ->
  Policy.set_decider (function
    | Policy.Poll_decision { ordinal; _ } -> ordinal = 0
    | _ -> false);
  Alcotest.(check bool) "ordinal 0 forced to time out" false
    (Policy.try_poll ~label:"p" (fun () -> true));
  Alcotest.(check bool) "ordinal 1 runs normally" true
    (Policy.try_poll ~label:"p" (fun () -> true));
  Alcotest.(check int) "two poll points consumed" 2 (Policy.poll_points ())

let test_decider_denies_retry () =
  Fun.protect ~finally:Policy.clear_decider @@ fun () ->
  Policy.set_decider (function
    | Policy.Retry_decision { ordinal; _ } -> ordinal = 0
    | _ -> false);
  let calls = ref 0 in
  let denied =
    match
      Policy.with_retries ~label:"r" (fun () ->
          incr calls;
          if !calls = 1 then raise (Fault.Bus_fault "transient once");
          !calls)
    with
    | _ -> false
    | exception Policy.Driver_error (Policy.Degraded _) -> true
  in
  Alcotest.(check bool) "the denied retry fails Degraded" true denied;
  Alcotest.(check int) "no re-execution after the denial" 1 !calls;
  Alcotest.(check int) "one retry point consumed" 1 (Policy.retry_points ());
  (* Without a decider the same operation recovers. *)
  Policy.clear_decider ();
  calls := 0;
  let v =
    Policy.with_retries ~label:"r" (fun () ->
        incr calls;
        if !calls = 1 then raise (Fault.Bus_fault "transient once");
        !calls)
  in
  Alcotest.(check int) "normal retry recovers" 2 v

(* {1 Campaign layer} *)

let small_bound =
  {
    Excamp.default_bound with
    Excamp.b_depth = 2;
    b_budget = 1;
    b_sites = 2;
  }

let explore_clean name =
  let r = Excamp.explore_workload ~bound:small_bound (Excamp.builtin name) in
  Alcotest.(check bool)
    (name ^ ": unfaulted schedule verified")
    true
    (r.Excamp.r_base_verdict = Faultcamp.Campaign.Verified);
  Alcotest.(check int)
    (name ^ ": no violations within the bound")
    0
    (List.length r.Excamp.r_report.Explore.rp_violations);
  Alcotest.(check bool) (name ^ ": the bound was actually explored") true
    (r.Excamp.r_report.Explore.rp_runs > 1)

let test_clean_ide () = explore_clean "ide-read"
let test_clean_gfx () = explore_clean "gfx"

let seeded_bound =
  {
    Excamp.default_bound with
    Excamp.b_depth = 8;
    b_budget = 2;
    b_sites = 1;
    b_policy_axes = false;
  }

let fixture_path = "golden/explore_counterexample.tape.jsonl"

let seeded_result = lazy
  (Excamp.explore_workload ~bound:seeded_bound ~max_violations:1
     Excamp.seeded_bug)

let seeded_cx () =
  match (Lazy.force seeded_result).Excamp.r_counterexamples with
  | [ cx ] -> cx
  | cxs -> Alcotest.failf "expected one counterexample, got %d"
             (List.length cxs)

let test_seeded_bug_found () =
  let r = Lazy.force seeded_result in
  Alcotest.(check bool) "the unfaulted schedule passes" true
    (r.Excamp.r_base_verdict = Faultcamp.Campaign.Verified);
  let cx = seeded_cx () in
  Alcotest.(check bool) "the violation is silent corruption" true
    (String.length cx.Excamp.cx_detail > 0)

let test_seeded_bug_minimized () =
  let cx = seeded_cx () in
  Alcotest.(check int) "shrunk to a single decision" 1
    (List.length cx.Excamp.cx_schedule);
  match cx.Excamp.cx_schedule with
  | [ { Explore.slot; choice = Excamp.Inject { op; addr; _ } } ] ->
      Alcotest.(check int) "the very first covered access" 0 slot;
      Alcotest.(check bool) "a write fault" true (op = Fault.Write);
      Alcotest.(check int) "on the THR data port" 0x3f8 addr
  | s ->
      Alcotest.failf "unexpected minimized schedule: %s"
        (Format.asprintf "%a"
           (Explore.pp_schedule Excamp.pp_choice)
           s)

let test_seeded_bug_tape_matches_fixture () =
  let cx = seeded_cx () in
  match Trace_export.tape_of_file fixture_path with
  | Error why -> Alcotest.failf "fixture unreadable: %s" why
  | Ok fixture ->
      Alcotest.(check string)
        "the minimized tape is byte-identical to the committed fixture"
        (Trace_export.tape_to_jsonl fixture)
        (Trace_export.tape_to_jsonl cx.Excamp.cx_tape)

let test_seeded_bug_replays () =
  let cx = seeded_cx () in
  let r = Excamp.replay_counterexample Excamp.seeded_bug cx in
  Alcotest.(check (option string)) "no divergence" None
    r.Excamp.rr_divergence;
  Alcotest.(check bool) "replay reproduces the tape byte for byte" true
    r.Excamp.rr_tape_identical

let () =
  Alcotest.run "explore"
    [
      ( "engine",
        [
          case "enumeration count" test_enumeration_count;
          case "enumeration order" test_enumeration_order;
          case "state dedup" test_dedup;
          case "feasibility cut" test_feasibility_cut;
          case "horizon prune" test_horizon_prune;
          case "resume equivalence" test_resume_equivalence;
        ] );
      ( "shrink",
        [
          case "to one decision" test_shrink_to_one_decision;
          case "passing unchanged" test_shrink_passing_unchanged;
        ] );
      ( "decider",
        [
          case "forced poll" test_decider_forces_poll;
          case "denied retry" test_decider_denies_retry;
        ] );
      ( "campaign",
        [
          case "ide-read clean" test_clean_ide;
          case "gfx clean" test_clean_gfx;
        ] );
      ( "seeded",
        [
          case "found" test_seeded_bug_found;
          case "minimized" test_seeded_bug_minimized;
          case "tape matches fixture" test_seeded_bug_tape_matches_fixture;
          case "replays byte-identically" test_seeded_bug_replays;
        ] );
    ]
