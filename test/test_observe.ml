(* The observability layer: bounded ring traces, the counter registry,
   the transparent bus observer, the instrumented stubs and policies,
   and the two bugfixes that rode along (bounded fault trace, bounds-
   checked memory bus). *)

module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Instance = Devil_runtime.Instance
module Machine = Drivers.Machine
module Value = Devil_ir.Value

let case name f = Alcotest.test_case name `Quick f

let qcount default =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* {1 The ring buffer} *)

let test_ring_bound () =
  let r = Trace.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Trace.Ring.add r i
  done;
  Alcotest.(check (list int)) "retains the last 4, oldest first" [ 7; 8; 9; 10 ]
    (Trace.Ring.to_list r);
  Alcotest.(check int) "length" 4 (Trace.Ring.length r);
  Alcotest.(check int) "total" 10 (Trace.Ring.total r);
  Alcotest.(check int) "dropped" 6 (Trace.Ring.dropped r);
  Trace.Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Trace.Ring.to_list r);
  Alcotest.(check int) "clear rewinds dropped" 0 (Trace.Ring.dropped r)

let test_ring_clamps_capacity () =
  let r = Trace.Ring.create ~capacity:0 in
  Trace.Ring.add r 1;
  Trace.Ring.add r 2;
  Alcotest.(check int) "capacity clamped to 1" 1 (Trace.Ring.capacity r);
  Alcotest.(check (list int)) "keeps the newest" [ 2 ] (Trace.Ring.to_list r)

let test_trace_eviction_keeps_seq () =
  let tr = Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Trace.emit tr (Trace.Bus_read { addr = i; width = 8; value = 0 })
  done;
  Alcotest.(check (list int)) "sequence numbers reveal the gap" [ 2; 3; 4 ]
    (List.map (fun (e : Trace.event) -> e.seq) (Trace.events tr));
  Alcotest.(check int) "recorded" 5 (Trace.recorded tr);
  Alcotest.(check int) "dropped" 2 (Trace.dropped tr)

(* {1 The observed bus: transparency} *)

let test_disabled_observer_is_identity () =
  let bus = Bus.memory () in
  Alcotest.(check bool) "no handles: the same bus comes back" true
    (Bus.observed bus == bus)

(* Random bus traffic (the PR 1 wrapper-transparency pattern). *)
type traffic =
  | T_read of int
  | T_write of int * int
  | T_read_block of int * int
  | T_write_block of int * int list

let traffic_gen =
  QCheck.Gen.(
    let addr = int_bound 31 in
    oneof
      [
        map (fun a -> T_read a) addr;
        map2 (fun a v -> T_write (a, v)) addr (int_bound 0xffff);
        map2 (fun a n -> T_read_block (a, n)) addr (int_range 1 8);
        map2
          (fun a vs -> T_write_block (a, vs))
          addr
          (list_size (int_range 1 8) (int_bound 0xffff));
      ])

let apply_traffic bus ops =
  List.concat_map
    (fun op ->
      match op with
      | T_read a -> [ bus.Bus.read ~width:8 ~addr:a ]
      | T_write (a, v) ->
          bus.Bus.write ~width:8 ~addr:a ~value:v;
          []
      | T_read_block (a, n) ->
          let into = Array.make n 0 in
          bus.Bus.read_block ~width:8 ~addr:a ~into;
          Array.to_list into
      | T_write_block (a, vs) ->
          bus.Bus.write_block ~width:8 ~addr:a ~from:(Array.of_list vs);
          [])
    ops

let prop_observed_bus_transparent =
  QCheck.Test.make
    ~name:"observed bus is observationally identical to the raw bus"
    ~count:(qcount 200)
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) traffic_gen))
    (fun ops ->
      let raw = apply_traffic (Bus.memory ()) ops in
      let trace = Trace.create ~capacity:16 () in
      let metrics = Metrics.create () in
      let wrapped =
        apply_traffic (Bus.observed ~trace ~metrics (Bus.memory ())) ops
      in
      wrapped = raw)

let prop_observed_bus_counts_every_op =
  QCheck.Test.make
    ~name:"observed bus records exactly one event per bus transaction"
    ~count:(qcount 200)
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) traffic_gen))
    (fun ops ->
      let trace = Trace.create ~capacity:1_000 () in
      let metrics = Metrics.create () in
      ignore (apply_traffic (Bus.observed ~trace ~metrics (Bus.memory ())) ops);
      let c = Metrics.count metrics in
      Trace.recorded trace = List.length ops
      && c "bus.reads" + c "bus.writes" + c "bus.block_reads"
         + c "bus.block_writes"
         = List.length ops)

(* {1 The observed bus: hand-counted workload} *)

let test_metrics_hand_counted () =
  let metrics = Metrics.create () in
  let bus = Bus.observed ~metrics (Bus.memory ()) in
  ignore (bus.Bus.read ~width:8 ~addr:0);
  ignore (bus.Bus.read ~width:8 ~addr:1);
  ignore (bus.Bus.read ~width:16 ~addr:2);
  bus.Bus.write ~width:8 ~addr:0 ~value:1;
  bus.Bus.write ~width:32 ~addr:1 ~value:2;
  bus.Bus.read_block ~width:8 ~addr:3 ~into:(Array.make 4 0);
  bus.Bus.write_block ~width:8 ~addr:3 ~from:(Array.make 5 0);
  let check name expected =
    Alcotest.(check int) name expected (Metrics.count metrics name)
  in
  check "bus.reads" 3;
  check "bus.writes" 2;
  check "bus.block_reads" 1;
  check "bus.block_writes" 1;
  check "bus.read_items" 4;
  check "bus.write_items" 5;
  (* bytes: singles 1+1+2 read, 1+4 written; blocks 4 read, 5 written *)
  check "bus.bytes_read" 8;
  check "bus.bytes_written" 10;
  match Metrics.histogram metrics "bus.block_len" with
  | None -> Alcotest.fail "bus.block_len histogram missing"
  | Some h ->
      Alcotest.(check int) "block_len samples" 2 h.Metrics.count;
      Alcotest.(check int) "block_len min" 4 h.Metrics.min;
      Alcotest.(check int) "block_len max" 5 h.Metrics.max

let test_json_mentions_counters () =
  let metrics = Metrics.create () in
  Metrics.incr metrics "bus.reads";
  Metrics.observe metrics "poll.iters" 3;
  let json = Metrics.to_json metrics in
  let has needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter in JSON" true (has "\"bus.reads\": 1");
  Alcotest.(check bool) "histogram in JSON" true (has "\"poll.iters\"")

(* {1 Machine cross-check: metrics vs the simulator's own stats} *)

let test_machine_metrics_match_io_space () =
  let metrics = Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Policy.unobserve (fun () ->
      let mouse = Drivers.Mouse.Devil_driver.create m.mouse_dev in
      ignore (Drivers.Mouse.Devil_driver.read_state mouse);
      let ide =
        Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev
      in
      ignore
        (Drivers.Ide.Devil_driver.read_sectors ide ~lba:0 ~count:1 ~mult:1
           ~path:`Block ~width:`W16));
  let s = Machine.stats m in
  let c = Metrics.count metrics in
  Alcotest.(check int) "single reads agree" s.Hwsim.Io_space.reads
    (c "bus.reads");
  Alcotest.(check int) "single writes agree" s.Hwsim.Io_space.writes
    (c "bus.writes");
  Alcotest.(check int) "block transactions agree" s.Hwsim.Io_space.block_ops
    (c "bus.block_reads" + c "bus.block_writes");
  Alcotest.(check int) "block elements agree" s.Hwsim.Io_space.block_items
    (c "bus.read_items" + c "bus.write_items");
  Alcotest.(check int) "io_ops equals the metrics total" (Machine.io_ops m)
    (c "bus.reads" + c "bus.writes" + c "bus.read_items" + c "bus.write_items")

(* {1 Instance instrumentation: cache hits and misses} *)

let compile_ok src =
  match Devil_check.Check.compile src with
  | Ok d -> d
  | Error diags ->
      Alcotest.fail (Format.asprintf "%a" Devil_syntax.Diagnostics.pp diags)

let test_cache_hit_miss () =
  let device =
    compile_ok
      "device d (base : bit[8] port @ {0..1}) {
         register a = base @ 0 : bit[8]; variable v = a : int(8);
         register b = base @ 1 : bit[8]; variable vb = b : int(8);
       }"
  in
  let trace = Trace.create ~capacity:32 () in
  let metrics = Metrics.create () in
  let inst =
    Instance.create ~label:"d" ~trace ~metrics device ~bus:(Bus.memory ())
      ~bases:[ ("base", 0) ]
  in
  ignore (Instance.get inst "v");
  Alcotest.(check int) "first read misses" 1 (Metrics.count metrics "cache.d.misses");
  Alcotest.(check int) "no hit yet" 0 (Metrics.count metrics "cache.d.hits");
  ignore (Instance.get inst "v");
  Alcotest.(check int) "second read hits" 1 (Metrics.count metrics "cache.d.hits");
  Alcotest.(check int) "register read happened once" 1
    (Metrics.count metrics "reg.d.a.reads");
  Alcotest.(check (option (float 1e-6))) "hit ratio" (Some 0.5)
    (Metrics.ratio metrics ~hits:"cache.d.hits" ~misses:"cache.d.misses");
  let kinds = List.map (fun (e : Trace.event) -> e.kind) (Trace.events trace) in
  Alcotest.(check bool) "trace saw the miss" true
    (List.exists
       (function Trace.Cache_miss { dev = "d"; reg = "a" } -> true | _ -> false)
       kinds);
  Alcotest.(check bool) "trace saw the hit" true
    (List.exists
       (function Trace.Cache_hit { dev = "d"; reg = "a" } -> true | _ -> false)
       kinds);
  Alcotest.(check bool) "trace saw the register read" true
    (List.exists
       (function Trace.Reg_read { dev = "d"; reg = "a"; _ } -> true | _ -> false)
       kinds)

(* {1 Bugfix: the memory bus checks its bounds} *)

let test_memory_bus_bounds () =
  let bus = Bus.memory ~size:16 () in
  (match bus.Bus.read ~width:8 ~addr:16 with
  | _ -> Alcotest.fail "out-of-range read did not raise"
  | exception Fault.Bus_fault _ -> ());
  (match bus.Bus.write ~width:8 ~addr:(-1) ~value:0 with
  | _ -> Alcotest.fail "negative-address write did not raise"
  | exception Fault.Bus_fault _ -> ());
  (* In-range traffic is untouched. *)
  bus.Bus.write ~width:8 ~addr:15 ~value:42;
  Alcotest.(check int) "in-range access works" 42 (bus.Bus.read ~width:8 ~addr:15)

let test_memory_bus_fault_is_classifiable () =
  let bus = Bus.memory ~size:16 () in
  match
    Policy.guarded ~label:"oob" (fun () -> bus.Bus.read ~width:8 ~addr:999)
  with
  | _ -> Alcotest.fail "guarded did not classify the bounds fault"
  | exception Policy.Driver_error (Policy.Bus_fault msg) ->
      Alcotest.(check bool) "label present" true (String.length msg > 3)

(* {1 Bugfix: the fault injector's trace is bounded} *)

let test_fault_trace_bounded () =
  let inj =
    Fault.wrap ~trace_capacity:4
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x1; probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  for _ = 1 to 10 do
    ignore (bus.Bus.read ~width:8 ~addr:0)
  done;
  Alcotest.(check int) "all injections counted" 10 (Fault.injection_count inj);
  Alcotest.(check int) "trace bounded at 4" 4 (List.length (Fault.events inj));
  Alcotest.(check int) "evictions reported" 6 (Fault.dropped_events inj);
  Fault.reset inj;
  Alcotest.(check int) "reset clears the trace" 0
    (List.length (Fault.events inj));
  Alcotest.(check int) "reset clears evictions" 0 (Fault.dropped_events inj)

let test_fault_sink_mirrors_injections () =
  let sink = Trace.create ~capacity:32 () in
  let metrics = Metrics.create () in
  let inj =
    Fault.wrap ~sink ~metrics
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x1; probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  ignore (bus.Bus.read ~width:8 ~addr:0);
  ignore (bus.Bus.read ~width:8 ~addr:0);
  let mirrored =
    List.filter
      (fun (e : Trace.event) ->
        match e.kind with
        | Trace.Fault_injected { plan = "flip"; addr = 0; _ } -> true
        | _ -> false)
      (Trace.events sink)
  in
  Alcotest.(check int) "both injections mirrored" 2 (List.length mirrored);
  Alcotest.(check int) "total counter" 2
    (Metrics.count metrics "fault.injections");
  Alcotest.(check int) "per-plan counter" 2
    (Metrics.count metrics "fault.flip.injections")

(* {1 Policy observer} *)

let with_observer f =
  let trace = Trace.create ~capacity:64 () in
  let metrics = Metrics.create () in
  Policy.observe ~trace ~metrics ();
  Fun.protect ~finally:Policy.unobserve (fun () -> f trace metrics)

let test_poll_metrics () =
  with_observer (fun trace metrics ->
      let k = ref 0 in
      Alcotest.(check bool) "poll satisfied" true
        (Policy.try_poll ~deadline:100 ~label:"third" (fun () ->
             incr k;
             !k >= 3));
      Alcotest.(check int) "poll.runs" 1 (Metrics.count metrics "poll.runs");
      Alcotest.(check int) "poll.ticks counts evaluations" 3
        (Metrics.count metrics "poll.ticks");
      Alcotest.(check int) "no timeout" 0 (Metrics.count metrics "poll.timeouts");
      Alcotest.(check bool) "trace has the poll" true
        (List.exists
           (fun (e : Trace.event) ->
             match e.kind with
             | Trace.Poll { label = "third"; iters = 3; ok = true; _ } -> true
             | _ -> false)
           (Trace.events trace)))

let test_poll_timeout_metrics () =
  with_observer (fun trace metrics ->
      Alcotest.(check bool) "poll expires" false
        (Policy.try_poll ~deadline:5 ~label:"never" (fun () -> false));
      Alcotest.(check int) "timeout counted" 1
        (Metrics.count metrics "poll.timeouts");
      Alcotest.(check int) "ticks charged" 5 (Metrics.count metrics "poll.ticks");
      Alcotest.(check bool) "trace records the failed poll" true
        (List.exists
           (fun (e : Trace.event) ->
             match e.kind with
             | Trace.Poll { label = "never"; ok = false; _ } -> true
             | _ -> false)
           (Trace.events trace)))

let test_retry_metrics () =
  with_observer (fun trace metrics ->
      let calls = ref 0 in
      let v =
        Policy.with_retries ~attempts:3 ~label:"flaky" (fun () ->
            incr calls;
            if !calls < 3 then raise (Fault.Bus_fault "transient") else 7)
      in
      Alcotest.(check int) "succeeded on third call" 7 v;
      Alcotest.(check int) "two retries" 2 (Metrics.count metrics "retry.attempts");
      Alcotest.(check int) "nothing exhausted" 0
        (Metrics.count metrics "retry.exhausted");
      Alcotest.(check int) "trace has both retries" 2
        (List.length
           (List.filter
              (fun (e : Trace.event) ->
                match e.kind with
                | Trace.Retry { label = "flaky"; _ } -> true
                | _ -> false)
              (Trace.events trace)));
      (match
         Policy.with_retries ~attempts:2 ~label:"doomed" (fun () ->
             raise (Fault.Bus_fault "always"))
       with
      | _ -> Alcotest.fail "exhausted retries did not raise"
      | exception Policy.Driver_error (Policy.Degraded _) -> ());
      Alcotest.(check int) "budget exhaustion counted" 1
        (Metrics.count metrics "retry.exhausted"))

let test_unobserve_stops_recording () =
  let metrics = Metrics.create () in
  Policy.observe ~metrics ();
  Policy.unobserve ();
  ignore (Policy.try_poll ~deadline:3 (fun () -> true));
  Alcotest.(check int) "nothing recorded after unobserve" 0
    (Metrics.count metrics "poll.runs")

let () =
  Alcotest.run "observe"
    [
      ( "ring",
        [
          case "bound and eviction order" test_ring_bound;
          case "capacity clamp" test_ring_clamps_capacity;
          case "trace sequence numbers" test_trace_eviction_keeps_seq;
        ] );
      ( "bus",
        List.map QCheck_alcotest.to_alcotest
          [ prop_observed_bus_transparent; prop_observed_bus_counts_every_op ]
        @ [
            case "disabled observer is the identity"
              test_disabled_observer_is_identity;
            case "hand-counted workload" test_metrics_hand_counted;
            case "JSON rendering" test_json_mentions_counters;
          ] );
      ( "machine",
        [ case "metrics agree with Io_space stats" test_machine_metrics_match_io_space ] );
      ("instance", [ case "cache hits and misses" test_cache_hit_miss ]);
      ( "bugfixes",
        [
          case "memory bus bounds" test_memory_bus_bounds;
          case "bounds fault is classifiable" test_memory_bus_fault_is_classifiable;
          case "fault trace bounded" test_fault_trace_bounded;
          case "fault sink mirrors injections" test_fault_sink_mirrors_injections;
        ] );
      ( "policy",
        [
          case "poll counters" test_poll_metrics;
          case "poll timeout counters" test_poll_timeout_metrics;
          case "retry counters" test_retry_metrics;
          case "unobserve stops recording" test_unobserve_stops_recording;
        ] );
    ]
