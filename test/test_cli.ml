(* End-to-end tests of the devilc binary itself: check every shipped
   .dil file, generate C and documentation to files, and verify exit
   codes on bad input. The executable is a declared dune dependency of
   the test (see test/dune). *)

let case name f = Alcotest.test_case name `Quick f

let devilc =
  (* cwd is the stanza directory under `dune runtest`, the project root
     under `dune exec`. *)
  List.find_opt Sys.file_exists
    [ "../bin/devilc.exe"; "_build/default/bin/devilc.exe" ]
  |> Option.value ~default:"../bin/devilc.exe"

let specs_dir =
  List.find_opt Sys.is_directory [ "../specs"; "specs" ]
  |> Option.value ~default:"../specs"

let run args =
  Sys.command (Filename.quote_command devilc args ^ " > cli_out.txt 2>&1")

let output () =
  let ic = open_in_bin "cli_out.txt" in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_binary_present () =
  if not (Sys.file_exists devilc) then
    Alcotest.fail "devilc binary not found (dune deps missing)"

let test_check_all_dil_files () =
  let dir = specs_dir in
  let files = Sys.readdir dir in
  Array.sort compare files;
  Alcotest.(check bool) "specs shipped" true (Array.length files >= 11);
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".dil" then begin
        let path = Filename.concat dir f in
        let args =
          if f = "pic8259.dil" then
            [ "check"; "--config"; "is_master=true"; path ]
          else [ "check"; path ]
        in
        Alcotest.(check int) (f ^ " verifies") 0 (run args);
        Alcotest.(check bool)
          (f ^ " reports") true
          (contains (output ()) "specification verified")
      end)
    files

let test_emit_c_to_file () =
  Alcotest.(check int) "emit-c" 0
    (run [ "emit-c"; "--builtin"; "logitech_busmouse"; "--prefix"; "bm";
           "-o"; "cli_busmouse.h" ]);
  let ic = open_in_bin "cli_busmouse.h" in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "header content" true
    (contains text "struct bm_devil_cache")

let test_emit_ocaml () =
  Alcotest.(check int) "emit-ocaml" 0
    (run [ "emit-ocaml"; "--builtin"; "uart16550" ]);
  Alcotest.(check bool) "functor" true
    (contains (output ()) "module Make (Env : DEVIL_ENV)")

let test_doc () =
  Alcotest.(check int) "doc" 0 (run [ "doc"; "--builtin"; "dma8237" ]);
  Alcotest.(check bool) "register map" true
    (contains (output ()) "Register map");
  Alcotest.(check int) "doc markdown" 0
    (run [ "doc"; "--markdown"; "--builtin"; "ide" ]);
  Alcotest.(check bool) "markdown table" true (contains (output ()) "| register |")

let test_dump_roundtrips () =
  Alcotest.(check int) "dump" 0 (run [ "dump"; "--builtin"; "cs4236b" ]);
  (* The dumped text must itself verify. *)
  let oc = open_out_bin "cli_dump.dil" in
  output_string oc (output ());
  close_out oc;
  Alcotest.(check int) "re-check of dump" 0 (run [ "check"; "cli_dump.dil" ])

let test_failures () =
  Alcotest.(check bool) "unknown builtin fails" true
    (run [ "check"; "--builtin"; "nope" ] <> 0);
  Alcotest.(check bool) "missing file fails" true
    (run [ "check"; "no_such_file.dil" ] <> 0);
  Alcotest.(check bool) "missing config fails" true
    (run [ "check"; "--builtin"; "pic8259" ] <> 0);
  let oc = open_out_bin "cli_bad.dil" in
  output_string oc "device broken (base : bit[8] port @ {0}) { register r = base : bit[8]; }";
  close_out oc;
  Alcotest.(check bool) "invalid spec fails" true
    (run [ "check"; "cli_bad.dil" ] <> 0);
  Alcotest.(check bool) "diagnostic printed" true
    (contains (output ()) "error")

(* {1 tracetool: the --kind family filter}

   The scheduler taught the trace vocabulary irq and queue events;
   pin the CLI surface: every declared family is accepted, irq/queue
   filtering keeps exactly its events, and an unknown family is a
   usage error (exit 2), leaving exit 1 to the gates. *)

let tracetool =
  List.find_opt Sys.file_exists
    [ "../tools/tracetool/tracetool.exe";
      "_build/default/tools/tracetool/tracetool.exe" ]
  |> Option.value ~default:"../tools/tracetool/tracetool.exe"

let run_tracetool args =
  Sys.command (Filename.quote_command tracetool args ^ " > cli_out.txt 2>&1")

let mixed_trace_file () =
  let open Devil_runtime.Trace in
  let events =
    List.mapi
      (fun i kind -> { seq = i; kind })
      [
        Reg_read { dev = "uart"; reg = "LSR"; raw = 0x60 };
        Irq_raised { line = 4; dev = "uart"; rid = 0 };
        Irq_delivered { line = 4; dev = "uart"; rid = 0 };
        Queue_submitted { dev = "ide"; label = "read#0"; depth = 1; rid = 1 };
        Bus_write { addr = 0x1f0; width = 16; value = 0xbeef };
        Queue_completed
          { dev = "ide"; label = "read#0"; depth = 0; ok = true; rid = 1 };
      ]
  in
  let oc = open_out_bin "cli_mixed_trace.jsonl" in
  output_string oc (Devil_runtime.Trace_export.events_to_jsonl events);
  close_out oc;
  "cli_mixed_trace.jsonl"

let test_tracetool_kind_filters () =
  if not (Sys.file_exists tracetool) then
    Alcotest.fail "tracetool binary not found (dune deps missing)";
  let file = mixed_trace_file () in
  Alcotest.(check int) "--kind irq exits 0" 0
    (run_tracetool [ "filter"; file; "--kind"; "irq" ]);
  let irq = output () in
  Alcotest.(check bool) "irq keeps Irq_raised" true (contains irq "irq_raised");
  Alcotest.(check bool) "irq keeps Irq_delivered" true
    (contains irq "irq_delivered");
  Alcotest.(check bool) "irq drops queue events" false (contains irq "queue_");
  Alcotest.(check bool) "irq drops reg events" false (contains irq "reg_read");
  Alcotest.(check int) "--kind queue exits 0" 0
    (run_tracetool [ "filter"; file; "--kind"; "queue" ]);
  let queue = output () in
  Alcotest.(check bool) "queue keeps submit" true
    (contains queue "queue_submitted");
  Alcotest.(check bool) "queue keeps completion" true
    (contains queue "queue_completed");
  Alcotest.(check bool) "queue drops irq events" false (contains queue "irq_")

let test_tracetool_kind_families () =
  let file = mixed_trace_file () in
  (* Every documented family is a valid selector. *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "--kind %s accepted" k)
        0
        (run_tracetool [ "filter"; file; "--kind"; k ]))
    [ "bus"; "reg"; "var"; "cache"; "action"; "policy"; "fault"; "irq";
      "queue" ]

let test_tracetool_unknown_kind () =
  let file = mixed_trace_file () in
  Alcotest.(check int) "unknown family is a usage error" 2
    (run_tracetool [ "filter"; file; "--kind"; "bogus" ]);
  Alcotest.(check bool) "names the bad family" true
    (contains (output ()) "unknown family");
  Alcotest.(check bool) "lists the accepted families" true
    (contains (output ()) "irq")

let test_tracetool_help () =
  (* Both spellings print the usage text to stdout and exit 0 — help
     is an answer, not an error (exit 2 stays reserved for misuse). *)
  List.iter
    (fun spelling ->
      Alcotest.(check int) (spelling ^ " exits 0") 0
        (run_tracetool [ spelling ]);
      let out = output () in
      Alcotest.(check bool) (spelling ^ " prints usage") true
        (contains out "usage:");
      (* The usage text covers the telemetry commands too. *)
      List.iter
        (fun cmd ->
          Alcotest.(check bool) (spelling ^ " mentions " ^ cmd) true
            (contains out cmd))
        [ "top"; "series"; "--once" ])
    [ "help"; "--help" ]

let telemetry_series_file () =
  let open Devil_runtime in
  let m = Metrics.create () in
  let tel = Telemetry.create ~capacity:8 m in
  for t = 1 to 3 do
    Metrics.incr m ~by:(2 * t) "sched.queue.completions";
    Metrics.observe m "sched.queue.wait_ticks" (5 * t);
    Telemetry.tick ~health:(Health.evaluate ~metrics:m ()) tel
  done;
  let oc = open_out_bin "cli_series.jsonl" in
  output_string oc (Trace_export.series_to_jsonl tel);
  close_out oc;
  "cli_series.jsonl"

let test_tracetool_top_once () =
  let file = telemetry_series_file () in
  Alcotest.(check int) "top --once exits 0" 0
    (run_tracetool [ "top"; file; "--once" ]);
  let out = output () in
  Alcotest.(check bool) "renders the header" true
    (contains out "tracetool top");
  Alcotest.(check bool) "shows the hottest counter" true
    (contains out "sched.queue.completions");
  Alcotest.(check bool) "shows the health verdict" true (contains out "ok");
  Alcotest.(check bool) "no eviction banner on a clean run" false
    (contains out "RING EVICTION")

let test_tracetool_series () =
  let file = telemetry_series_file () in
  Alcotest.(check int) "series exits 0" 0 (run_tracetool [ "series"; file ]);
  let out = output () in
  Alcotest.(check bool) "lists the counter series" true
    (contains out "sched.queue.completions");
  Alcotest.(check bool) "lists the histogram series" true
    (contains out "sched.queue.wait_ticks");
  Alcotest.(check int) "unreadable file is exit 2" 2
    (run_tracetool [ "series"; "no_such_series.jsonl" ])

let test_list () =
  Alcotest.(check int) "list" 0 (run [ "list" ]);
  let out = output () in
  List.iter
    (fun name -> Alcotest.(check bool) name true (contains out name))
    [ "logitech_busmouse"; "ne2000"; "ide"; "piix4_ide"; "dma8237";
      "pic8259"; "cs4236b"; "permedia2"; "uart16550"; "mc146818"; "i8042" ]

let () =
  Alcotest.run "cli"
    [
      ( "devilc",
        [
          case "binary present" test_binary_present;
          case "check all shipped specs" test_check_all_dil_files;
          case "emit-c to file" test_emit_c_to_file;
          case "emit-ocaml" test_emit_ocaml;
          case "doc" test_doc;
          case "dump round-trips" test_dump_roundtrips;
          case "failure modes" test_failures;
          case "list" test_list;
        ] );
      ( "tracetool",
        [
          case "--kind irq/queue filter" test_tracetool_kind_filters;
          case "every family accepted" test_tracetool_kind_families;
          case "unknown family exits 2" test_tracetool_unknown_kind;
          case "help and --help print usage, exit 0" test_tracetool_help;
          case "top --once renders the dashboard" test_tracetool_top_once;
          case "series lists the dumped metrics" test_tracetool_series;
        ] );
    ]
