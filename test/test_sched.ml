(* The event-driven scheduler (DESIGN.md §13): queue/timer/dispatch
   unit tests over a toy controller, the 8259A EOI re-dispatch
   regression, the shared receive-ring reassembly helper, the
   sync/async failure-taxonomy equivalence property, interrupt-path
   fault injection (scheduled and seeded), and the protocol-monitor
   oracle over the interrupt-driven drivers. *)

module Sched = Devil_runtime.Sched
module Policy = Devil_runtime.Policy
module Fault = Devil_runtime.Fault
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Monitor = Devil_runtime.Monitor
module Machine = Drivers.Machine
module Ide = Drivers.Ide
module Net = Drivers.Net
module Specs = Devil_specs.Specs

let case name f = Alcotest.test_case name `Quick f

let qcount default =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* A scheduler over a controller that never interrupts — enough for
   the queue and timer semantics. *)
let quiet_sched () =
  let metrics = Metrics.create () in
  let t =
    Sched.create ~metrics
      {
        Sched.ctl_raise = (fun ~line:_ -> ());
        ctl_ack = (fun () -> None);
        ctl_eoi = (fun ~line:_ -> ());
      }
  in
  (t, metrics)

(* {1 Queues: FIFO order, completion/start overlap, the leak invariant} *)

let test_fifo_overlap () =
  let t, metrics = quiet_sched () in
  let log = ref [] in
  let push x = log := x :: !log in
  let mk i =
    Sched.submit t ~dev:"d"
      ~label:(Printf.sprintf "op%d" i)
      ~start:(fun () -> push (Printf.sprintf "start%d" i))
      ~on_done:(fun r ->
        push (Printf.sprintf "done%d:%s" i (match r with Ok () -> "ok" | Error _ -> "err")))
      ()
  in
  let r1 = mk 1 in
  let r2 = mk 2 in
  let r3 = mk 3 in
  Alcotest.(check int) "only the head is in flight" 3 (Sched.depth t ~dev:"d");
  Alcotest.(check (list string)) "head started at submit" [ "start1" ] (List.rev !log);
  Sched.complete t ~dev:"d" (Ok ());
  Sched.complete t ~dev:"d" (Ok ());
  Sched.complete t ~dev:"d" (Ok ());
  (* Completion and the next command's setup are one loop step. *)
  Alcotest.(check (list string)) "strict FIFO, next start inside the completion"
    [ "start1"; "done1:ok"; "start2"; "done2:ok"; "start3"; "done3:ok" ]
    (List.rev !log);
  List.iter
    (fun r ->
      match Sched.peek r with
      | Some (Ok ()) -> ()
      | _ -> Alcotest.fail "request did not finish Ok")
    [ r1; r2; r3 ];
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding t);
  Alcotest.(check int) "submits" 3 (Metrics.count metrics "sched.submits");
  Alcotest.(check int) "completions" 3 (Metrics.count metrics "sched.completions")

let test_timeout_classified () =
  let t, metrics = quiet_sched () in
  let aborted = ref false in
  let rq =
    Sched.submit t ~dev:"d" ~label:"op" ~timeout:5
      ~start:(fun () -> ())
      ~abort:(fun () -> aborted := true)
      ()
  in
  (match Sched.await t rq with
  | () -> Alcotest.fail "expected a timeout"
  | exception Policy.Driver_error (Policy.Timeout l) ->
      Alcotest.(check string) "the same classified Timeout a poll raises" "op" l);
  Alcotest.(check bool) "abort ran" true !aborted;
  Alcotest.(check int) "counted" 1 (Metrics.count metrics "sched.timeouts");
  Alcotest.(check int) "finished requests still complete" 1
    (Metrics.count metrics "sched.completions");
  (* A late interrupt after the timeout is accounted, not fatal. *)
  Sched.complete t ~dev:"d" (Ok ());
  Alcotest.(check int) "late completion is unhandled" 1
    (Metrics.count metrics "sched.irqs.unhandled");
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding t)

let test_start_failure_is_classified () =
  let t, _ = quiet_sched () in
  let rq =
    Sched.submit t ~dev:"d" ~label:"boom"
      ~start:(fun () -> Policy.fail (Policy.Device_fault "dead on issue"))
      ()
  in
  (match Sched.peek rq with
  | Some (Error (Policy.Device_fault _)) -> ()
  | _ -> Alcotest.fail "issue-time failure must classify immediately");
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding t)

(* {1 Timers: deadline/creation order, cancel, wheel wrap-around} *)

let test_timer_order_and_cancel () =
  let t, _ = quiet_sched () in
  let log = ref [] in
  let _a = Sched.after t ~ticks:2 (fun () -> log := "a" :: !log) in
  let b = Sched.after t ~ticks:1 (fun () -> log := "b" :: !log) in
  let _c = Sched.after t ~ticks:2 (fun () -> log := "c" :: !log) in
  Sched.cancel b;
  Sched.tick t;
  Alcotest.(check (list string)) "cancelled timer never fires" [] (List.rev !log);
  Sched.tick t;
  Alcotest.(check (list string)) "deadline then creation order" [ "a"; "c" ]
    (List.rev !log)

let test_timer_beyond_one_revolution () =
  let t, _ = quiet_sched () in
  let fired = ref false in
  (* 260 > the wheel size: the bucket is revisited once before the
     deadline is actually due. *)
  let _ = Sched.after t ~ticks:260 (fun () -> fired := true) in
  for _ = 1 to 259 do
    Sched.tick t
  done;
  Alcotest.(check bool) "not early" false !fired;
  Sched.tick t;
  Alcotest.(check bool) "fires on its revolution" true !fired

(* The wheel has 256 buckets; a deadline exactly one wheel size away
   lands in the bucket the clock is currently on, so the very first
   visit to that bucket (tick 1 of a fresh scheduler is bucket 1, the
   deadline's bucket comes around 255 ticks later... ) must not fire it
   early: the deadline comparison, not bucket membership, is what
   gates firing. *)
let test_timer_exact_wheel_size () =
  let t, _ = quiet_sched () in
  let fired = ref false in
  let _ = Sched.after t ~ticks:256 (fun () -> fired := true) in
  for _ = 1 to 255 do
    Sched.tick t
  done;
  Alcotest.(check bool) "silent through the first revolution" false !fired;
  Sched.tick t;
  Alcotest.(check bool) "fires exactly at one wheel size" true !fired

(* Two timers sharing a bucket, one revolution apart: visiting the
   bucket for the near deadline must leave the far one armed. *)
let test_timer_shared_bucket_one_revolution_apart () =
  let t, _ = quiet_sched () in
  let log = ref [] in
  let _near = Sched.after t ~ticks:4 (fun () -> log := "near" :: !log) in
  let _far = Sched.after t ~ticks:260 (fun () -> log := "far" :: !log) in
  for _ = 1 to 4 do
    Sched.tick t
  done;
  Alcotest.(check (list string)) "bucket visit fires only the due timer"
    [ "near" ] (List.rev !log);
  for _ = 5 to 259 do
    Sched.tick t
  done;
  Alcotest.(check (list string)) "far timer still pending at 259" [ "near" ]
    (List.rev !log);
  Sched.tick t;
  Alcotest.(check (list string)) "far timer fires one revolution later"
    [ "near"; "far" ] (List.rev !log)

(* A timer armed just before the clock's low byte wraps (clock 255 ->
   256) must survive the modulo boundary: deadline 257 lives in bucket
   1, which the wheel reaches after passing bucket 0. *)
let test_timer_across_wrap_boundary () =
  let t, _ = quiet_sched () in
  for _ = 1 to 255 do
    Sched.tick t
  done;
  let fired = ref false in
  let _ = Sched.after t ~ticks:2 (fun () -> fired := true) in
  Sched.tick t;
  Alcotest.(check bool) "not at the wrap tick (clock 256)" false !fired;
  Sched.tick t;
  Alcotest.(check bool) "fires just past the wrap (clock 257)" true !fired

(* {1 Dispatch: toy interrupt delivery and the storm bound} *)

let test_dispatch_delivers_and_completes () =
  let metrics = Metrics.create () in
  let tref = ref None in
  let note high = match !tref with Some t -> Sched.note_int t high | None -> () in
  let pending = ref None in
  let ctl =
    {
      Sched.ctl_raise =
        (fun ~line ->
          pending := Some line;
          note true);
      ctl_ack =
        (fun () ->
          match !pending with
          | None ->
              note false;
              None
          | Some line ->
              pending := None;
              note false;
              Some line);
      ctl_eoi = (fun ~line:_ -> ());
    }
  in
  let t = Sched.create ~metrics ctl in
  tref := Some t;
  let dev_high = ref false in
  Sched.add_source t ~line:2 ~dev:"d" (fun () -> !dev_high);
  Sched.set_handler t ~line:2 ~dev:"d" (fun () ->
      dev_high := false;
      Sched.complete t ~dev:"d" (Ok ()));
  let rq =
    Sched.submit t ~dev:"d" ~label:"op" ~start:(fun () -> dev_high := true) ()
  in
  Sched.await t rq;
  Alcotest.(check int) "one raise" 1 (Metrics.count metrics "sched.irqs.raised");
  Alcotest.(check int) "one delivery" 1 (Metrics.count metrics "sched.irqs.delivered");
  Alcotest.(check int) "no storm" 0 (Metrics.count metrics "sched.irqs.storms")

let test_storm_bounded () =
  let metrics = Metrics.create () in
  (* A controller stuck asserting line 1: dispatch must bound its
     deliveries instead of spinning forever. *)
  let t =
    Sched.create ~metrics
      {
        Sched.ctl_raise = (fun ~line:_ -> ());
        ctl_ack = (fun () -> Some 1);
        ctl_eoi = (fun ~line:_ -> ());
      }
  in
  Sched.set_handler t ~line:1 ~dev:"noisy" (fun () -> ());
  Sched.note_int t true;
  let delivered = Sched.dispatch t in
  Alcotest.(check int) "bounded per dispatch" 16 delivered;
  Alcotest.(check int) "storm counted" 1 (Metrics.count metrics "sched.irqs.storms")

(* {1 The 8259A EOI re-dispatch regression}

   With lines 3 and 5 raised, INTA takes 3 into service and INT drops
   (5 is nested below). The specific EOI for 3 uncovers 5, so the INT
   callback must fire on the register write itself — the loop would
   otherwise only notice on the next raise. *)

let test_pic_eoi_uncovers_queued_line () =
  let p = Hwsim.Pic8259.create () in
  let m = Hwsim.Pic8259.model p in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr 0 0x11;
  wr 1 0x20;
  wr 1 0x04;
  wr 1 0x01;
  wr 1 0x00;
  let edges = ref [] in
  Hwsim.Pic8259.set_int_callback p (fun level -> edges := level :: !edges);
  Hwsim.Pic8259.raise_irq p ~line:3;
  Hwsim.Pic8259.raise_irq p ~line:5;
  Alcotest.(check (option int)) "highest first" (Some 0x23) (Hwsim.Pic8259.inta p);
  Alcotest.(check bool) "line 5 nested below the in-service 3" false
    (Hwsim.Pic8259.int_asserted p);
  edges := [];
  wr 0 (0x60 lor 3) (* specific EOI for line 3 *);
  Alcotest.(check (list bool)) "EOI write re-asserts INT for the queued line"
    [ true ] (List.rev !edges);
  Alcotest.(check (option int)) "and line 5 delivers" (Some 0x25)
    (Hwsim.Pic8259.inta p)

(* The same property end to end: disk and NIC interrupt simultaneously;
   one Sched.tick must deliver both — the EOI for the network line
   (higher priority) re-raises INT for the still-pending IDE line. *)

let test_machine_two_lines_one_tick () =
  let metrics = Metrics.create () in
  Fun.protect ~finally:Policy.unobserve @@ fun () ->
  let m = Machine.create ~metrics () in
  let sched = Machine.sched m in
  let expected = Bytes.init 512 (fun i -> Char.chr ((i * 13 + 1) land 0xff)) in
  Hwsim.Ide_disk.write_sector m.disk ~lba:42 expected;
  Hwsim.Piix4.set_latency m.busmaster 1;
  let d =
    Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let sync_net = Net.Devil_driver.create m.ne2000_dev in
  Net.Devil_driver.init sync_net ~mac:"\x02\x00\x00\x00\x00\x07";
  let a = Net.Async.create ~sched ~line:Machine.irq_net m.ne2000_dev in
  let frames = ref [] in
  Net.Async.on_frame a (fun f -> frames := f :: !frames);
  let got = ref Bytes.empty in
  let rq = Ide.Async.read_dma d ~lba:42 ~count:1 ~on_data:(fun b -> got := b) () in
  (* Complete the deferred DMA and land a frame before any loop
     iteration runs: both INT sources are now high at once. *)
  Hwsim.Piix4.tick m.busmaster;
  let frame = String.init 48 (fun i -> Char.chr ((i * 5 + 3) land 0xff)) in
  Alcotest.(check bool) "frame accepted" true (Hwsim.Ne2000.inject_frame m.nic frame);
  Sched.tick sched;
  Alcotest.(check int) "both lines delivered in one tick" 2
    (Metrics.count metrics "sched.irqs.delivered");
  Alcotest.(check (list string)) "frame drained" [ frame ] (List.rev !frames);
  (match Sched.peek rq with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "queued DMA read did not complete");
  Alcotest.(check bytes) "sector intact" expected !got;
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding sched)

(* {1 Receive-ring reassembly: the shared wrap helper} *)

let test_ring_copy_straddle () =
  (* A fake 32 KiB ring backing store addressed absolutely, like the
     remote-DMA read the drivers pass in. Ring geometry is the
     drivers': pages 0x46..0x80, so the ring ends at byte 0x8000. *)
  let ram = Bytes.init 0x8000 (fun i -> Char.chr (i land 0xff)) in
  let reads = ref [] in
  let read ~addr ~len =
    reads := (addr, len) :: !reads;
    Bytes.sub ram addr len
  in
  (* Header at page 0x7f: body starts at 0x7f04, 252 bytes fit before
     the ring end, the remaining 48 continue at 0x4600. *)
  let body = Net.ring_copy ~read ~bnry:0x7f ~body_len:300 in
  Alcotest.(check int) "length" 300 (Bytes.length body);
  Alcotest.(check (list (pair int int))) "split exactly at the ring end"
    [ (0x7f04, 252); (0x4600, 48) ]
    (List.rev !reads);
  for i = 0 to 251 do
    Alcotest.(check char) (Printf.sprintf "head byte %d" i)
      (Bytes.get ram (0x7f04 + i)) (Bytes.get body i)
  done;
  for i = 252 to 299 do
    Alcotest.(check char) (Printf.sprintf "wrapped byte %d" i)
      (Bytes.get ram (0x4600 + (i - 252)))
      (Bytes.get body i)
  done;
  (* The non-straddling case is a single read. *)
  reads := [];
  let body = Net.ring_copy ~read ~bnry:0x50 ~body_len:100 in
  Alcotest.(check int) "plain length" 100 (Bytes.length body);
  Alcotest.(check (list (pair int int))) "single read" [ (0x5004, 100) ]
    (List.rev !reads)

(* End to end: walk CURR to the last ring page with 57 one-page frames,
   then inject one whose body crosses the ring end. Both drivers must
   hand back every frame byte-identically. *)

let straddle_frames =
  List.init 57 (fun i -> String.init 252 (fun j -> Char.chr ((i + j) land 0xff)))
  @ [ String.init 300 (fun j -> Char.chr (((j * 7) + 1) land 0xff)) ]

let drive_straddle ~nic ~receive ~inject =
  let last = List.length straddle_frames - 1 in
  List.mapi
    (fun i f ->
      if not (inject f) then Alcotest.fail "ring rejected an injected frame";
      if i = last then
        (* Proof the final frame actually wrapped: its byte 252 landed
           at the ring start (page 0x46). *)
        Alcotest.(check int) "last frame straddles the ring end"
          (Char.code f.[252])
          (Hwsim.Ne2000.ram_byte nic (0x46 * 256));
      match receive () with
      | Some g -> g
      | None -> Alcotest.fail "injected frame not received")
    straddle_frames

let test_ring_straddle_byte_identical () =
  let m1 = Machine.create () in
  let d = Net.Devil_driver.create m1.ne2000_dev in
  Net.Devil_driver.init d ~mac:"\x02\x00\x00\x00\x00\x01";
  let via_devil =
    drive_straddle ~nic:m1.nic
      ~receive:(fun () -> Net.Devil_driver.receive d)
      ~inject:(Hwsim.Ne2000.inject_frame m1.nic)
  in
  let m2 = Machine.create () in
  let h = Net.Handcrafted.create m2.bus ~base:Machine.ne2000_base in
  Net.Handcrafted.init h ~mac:"\x02\x00\x00\x00\x00\x01";
  let via_hand =
    drive_straddle ~nic:m2.nic
      ~receive:(fun () -> Net.Handcrafted.receive h)
      ~inject:(Hwsim.Ne2000.inject_frame m2.nic)
  in
  Alcotest.(check (list string)) "devil driver returns the injected frames"
    straddle_frames via_devil;
  Alcotest.(check (list string)) "handcrafted reassembles byte-identically"
    via_devil via_hand

(* {1 Sync/async failure-taxonomy equivalence}

   The queued driver must fail exactly the way the polling driver
   does: same constructor for the same adversity. Each scenario runs
   the same two-sector DMA read against a fresh machine per mode. *)

type scenario = Clean | Transient_burst of int | Dropped_go | Lost_completion

let scenario_print = function
  | Clean -> "clean"
  | Transient_burst b -> Printf.sprintf "transient-burst(budget=%d)" b
  | Dropped_go -> "dropped-go"
  | Lost_completion -> "lost-completion"

let scenario_gen =
  QCheck.Gen.(
    oneof
      [
        return Clean;
        map (fun b -> Transient_burst b) (int_range 0 5);
        return Dropped_go;
        return Lost_completion;
      ])

let plans_of = function
  | Clean | Lost_completion | Transient_burst 0 -> None
  | Transient_burst b ->
      Some
        [
          Fault.plan ~label:"t" ~budget:b ~first:Machine.ide_base
            ~last:(Machine.ide_base + 7)
            (Fault.Transient { probability = 1.0 });
        ]
  | Dropped_go ->
      (* Every write to the busmaster command register is dropped: the
         engine never starts, in both drivers. *)
      Some
        [
          Fault.plan ~label:"drop-go" ~ops:[ Fault.Write ] ~budget:1000
            ~first:Machine.piix4_base ~last:Machine.piix4_base
            (Fault.Drop_write { probability = 1.0 });
        ]

let latency_of = function Lost_completion -> 1_000_000 | _ -> 4

let scenario_machine scen =
  let m = Machine.create ?faults:(plans_of scen) () in
  let expected =
    Bytes.init (2 * 512) (fun i -> Char.chr (((i * 31) + 7) land 0xff))
  in
  for s = 0 to 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba:(500 + s)
      (Bytes.sub expected (s * 512) 512)
  done;
  Hwsim.Piix4.set_latency m.busmaster (latency_of scen);
  (m, expected)

let tag_of f =
  match f () with
  | () -> "ok"
  | exception Policy.Driver_error e -> (
      match e with
      | Policy.Timeout _ -> "timeout"
      | Policy.Device_fault _ -> "device_fault"
      | Policy.Bus_fault _ -> "bus_fault"
      | Policy.Degraded _ -> "degraded")

let run_sync scen =
  let m, expected = scenario_machine scen in
  let d = Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  tag_of (fun () ->
      let got =
        Ide.Devil_driver.read_dma d
          ~memory:(Hwsim.Piix4.memory m.busmaster)
          ~lba:500 ~count:2
      in
      if not (Bytes.equal got expected) then
        Policy.fail (Policy.Device_fault "sync: data differs from disk"))

let run_async scen =
  let m, expected = scenario_machine scen in
  let sched = Machine.sched m in
  let d =
    Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let got = ref Bytes.empty in
  tag_of (fun () ->
      let rq = Ide.Async.read_dma d ~lba:500 ~count:2 ~on_data:(fun b -> got := b) () in
      Ide.Async.await d rq;
      if not (Bytes.equal !got expected) then
        Policy.fail (Policy.Device_fault "async: data differs from disk"))

let expected_tag = function
  | Clean -> "ok"
  | Transient_burst b -> if b >= Policy.default_attempts () then "degraded" else "ok"
  | Dropped_go | Lost_completion -> "timeout"

let taxonomy_equivalence =
  QCheck.Test.make ~name:"sync and queued drivers share a failure taxonomy"
    ~count:(qcount 20)
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun scen ->
      let saved = Policy.default_deadline () in
      Policy.set_default_deadline 200;
      Fun.protect ~finally:(fun () -> Policy.set_default_deadline saved)
      @@ fun () ->
      let s = run_sync scen in
      let a = run_async scen in
      let e = expected_tag scen in
      if s <> e || a <> e then
        QCheck.Test.fail_reportf "%s: sync=%s async=%s expected=%s"
          (scenario_print scen) s a e;
      true)

(* {1 Faults on the interrupt-delivery path} *)

(* Scheduled (exhaustive-mode) injection: the first acknowledge read
   aborts. The delivery is lost that pass, counted, and the
   level-triggered source re-raises on the next tick — the request
   still completes Ok with no driver-visible retry. *)
let test_scheduled_ack_fault_redelivers () =
  let metrics = Metrics.create () in
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~label:"ack" ~op:Fault.Read ~at:0 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let tref = ref None in
  let note high = match !tref with Some t -> Sched.note_int t high | None -> () in
  (* The controller keeps its pending line in the faulted bus's byte 0
     (0x80 | line), so acknowledging is a read that the schedule can
     abort. *)
  let ctl =
    {
      Sched.ctl_raise =
        (fun ~line ->
          bus.Bus.write ~width:8 ~addr:0 ~value:(0x80 lor line);
          note true);
      ctl_ack =
        (fun () ->
          let v = bus.Bus.read ~width:8 ~addr:0 in
          if v land 0x80 = 0 then begin
            note false;
            None
          end
          else begin
            bus.Bus.write ~width:8 ~addr:0 ~value:0;
            note false;
            Some (v land 0x7)
          end);
      ctl_eoi = (fun ~line:_ -> ());
    }
  in
  let t = Sched.create ~metrics ctl in
  tref := Some t;
  let dev_high = ref false in
  Sched.add_source t ~line:2 ~dev:"d" (fun () -> !dev_high);
  Sched.set_handler t ~line:2 ~dev:"d" (fun () ->
      dev_high := false;
      Sched.complete t ~dev:"d" (Ok ()));
  let rq =
    Sched.submit t ~dev:"d" ~label:"op" ~timeout:50
      ~start:(fun () -> dev_high := true)
      ()
  in
  Sched.await t rq;
  Alcotest.(check int) "the scheduled fault fired" 1 (Fault.scheduled_hits inj);
  Alcotest.(check int) "delivery loss counted" 1
    (Metrics.count metrics "sched.irqs.faults");
  Alcotest.(check int) "redelivered" 1 (Metrics.count metrics "sched.irqs.delivered");
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding t)

(* The same loss through the real machine: a seeded transient on the
   8259A acknowledge read. The queued read must still return the right
   bytes, with the loss visible only in the counters. *)
let test_machine_inta_fault_recovers () =
  let metrics = Metrics.create () in
  Fun.protect ~finally:Policy.unobserve @@ fun () ->
  let plans =
    [
      Fault.plan ~label:"inta" ~ops:[ Fault.Read ] ~budget:1
        ~first:Machine.pic_base ~last:Machine.pic_base
        (Fault.Transient { probability = 1.0 });
    ]
  in
  let m = Machine.create ~faults:plans ~metrics () in
  let sched = Machine.sched m in
  (match m.injector with
  | Some inj ->
      Alcotest.(check int) "building the loop costs no acknowledge reads" 0
        (Fault.injection_count inj)
  | None -> Alcotest.fail "machine built without its injector");
  let expected = Bytes.init 512 (fun i -> Char.chr ((i * 3) land 0xff)) in
  Hwsim.Ide_disk.write_sector m.disk ~lba:9 expected;
  Hwsim.Piix4.set_latency m.busmaster 2;
  let d =
    Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let got = ref Bytes.empty in
  let rq = Ide.Async.read_dma d ~lba:9 ~count:1 ~on_data:(fun b -> got := b) () in
  Ide.Async.await d rq;
  Alcotest.(check bytes) "recovered read is intact" expected !got;
  (match m.injector with
  | Some inj -> Alcotest.(check int) "the INTA read faulted once" 1 (Fault.injection_count inj)
  | None -> ());
  Alcotest.(check int) "loss counted" 1 (Metrics.count metrics "sched.irqs.faults");
  Alcotest.(check int) "then redelivered" 1
    (Metrics.count metrics "sched.irqs.delivered")

(* A persistently lost interrupt — the line masked at the controller —
   is the classified timeout, and the late delivery after unmasking is
   accounted as unhandled rather than resurrecting the dead request. *)
let test_masked_line_times_out () =
  let metrics = Metrics.create () in
  Fun.protect ~finally:Policy.unobserve @@ fun () ->
  let m = Machine.create ~metrics () in
  let sched = Machine.sched m in
  (* OCW1: mask the IDE line after the loop unmasked everything. *)
  m.bus.Bus.write ~width:8 ~addr:(Machine.pic_base + 1)
    ~value:(1 lsl Machine.irq_ide);
  Hwsim.Ide_disk.write_sector m.disk ~lba:5
    (Bytes.make 512 'x');
  Hwsim.Piix4.set_latency m.busmaster 2;
  let d =
    Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let saved = Policy.default_deadline () in
  Policy.set_default_deadline 40;
  let rq = Ide.Async.read_dma d ~lba:5 ~count:1 () in
  Policy.set_default_deadline saved;
  (match Ide.Async.await d rq with
  | () -> Alcotest.fail "masked line must time the request out"
  | exception Policy.Driver_error (Policy.Timeout _) -> ());
  Alcotest.(check int) "classified timeout counted" 1
    (Metrics.count metrics "sched.timeouts");
  (* Unmask: the still-asserted level delivers late, into no request. *)
  m.bus.Bus.write ~width:8 ~addr:(Machine.pic_base + 1) ~value:0x00;
  Sched.tick sched;
  Alcotest.(check int) "late delivery is unhandled" 1
    (Metrics.count metrics "sched.irqs.unhandled");
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding sched)

(* {1 The protocol monitor stays green over the queued drivers} *)

let test_async_drivers_pass_monitor () =
  let trace = Trace.create ~capacity:8192 () in
  Fun.protect ~finally:Policy.unobserve @@ fun () ->
  let m = Machine.create ~trace () in
  let mon =
    Monitor.create
      ~devices:
        [
          ("ide", Specs.ide ());
          ("piix4", Specs.piix4_ide ());
          ("ne2000", Specs.ne2000 ());
        ]
  in
  Monitor.attach mon trace;
  let sched = Machine.sched m in
  let expected = Bytes.init (2 * 512) (fun i -> Char.chr ((i * 11) land 0xff)) in
  for s = 0 to 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba:(70 + s)
      (Bytes.sub expected (s * 512) 512)
  done;
  Hwsim.Piix4.set_latency m.busmaster 3;
  let d =
    Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let got = ref Bytes.empty in
  let rq = Ide.Async.read_dma d ~lba:70 ~count:2 ~on_data:(fun b -> got := b) () in
  let sync_net = Net.Devil_driver.create m.ne2000_dev in
  Net.Devil_driver.init sync_net ~mac:"\x02\x00\x00\x00\x00\x09";
  let a = Net.Async.create ~sched ~line:Machine.irq_net m.ne2000_dev in
  let frames = ref [] in
  Net.Async.on_frame a (fun f -> frames := f :: !frames);
  let frame = String.init 60 (fun i -> Char.chr ((i * 9) land 0xff)) in
  Alcotest.(check bool) "frame accepted" true (Hwsim.Ne2000.inject_frame m.nic frame);
  let tx = Net.Async.send a "monitor oracle tx frame" in
  Ide.Async.await d rq;
  Net.Async.await a tx;
  Sched.drain sched;
  Alcotest.(check bytes) "sectors intact" expected !got;
  Alcotest.(check (list string)) "frame drained" [ frame ] (List.rev !frames);
  Monitor.finalize mon;
  (match Monitor.violations mon with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "monitor flagged the queued drivers: %s/%s: %s"
        v.Monitor.vl_dev v.Monitor.vl_rule v.Monitor.vl_detail);
  Alcotest.(check int) "no queue leak" 0 (Sched.outstanding sched)

let () =
  Alcotest.run "sched"
    [
      ( "queues",
        [
          case "FIFO order, completion/start overlap" test_fifo_overlap;
          case "timeout is the classified poll failure" test_timeout_classified;
          case "issue-time failure classifies immediately"
            test_start_failure_is_classified;
        ] );
      ( "timers",
        [
          case "deadline then creation order; cancel" test_timer_order_and_cancel;
          case "wheel wrap-around" test_timer_beyond_one_revolution;
          case "deadline exactly one wheel size away" test_timer_exact_wheel_size;
          case "shared bucket, one revolution apart"
            test_timer_shared_bucket_one_revolution_apart;
          case "armed across the 256-boundary" test_timer_across_wrap_boundary;
        ] );
      ( "dispatch",
        [
          case "toy delivery completes a request" test_dispatch_delivers_and_completes;
          case "interrupt storm is bounded" test_storm_bounded;
        ] );
      ( "pic-eoi",
        [
          case "EOI write re-asserts INT for a queued line"
            test_pic_eoi_uncovers_queued_line;
          case "two simultaneous lines deliver in one tick"
            test_machine_two_lines_one_tick;
        ] );
      ( "rx-ring",
        [
          case "ring_copy splits exactly at the ring end" test_ring_copy_straddle;
          case "straddling frame reassembles byte-identically in both drivers"
            test_ring_straddle_byte_identical;
        ] );
      ( "taxonomy",
        [ QCheck_alcotest.to_alcotest taxonomy_equivalence ] );
      ( "irq-faults",
        [
          case "scheduled acknowledge fault redelivers"
            test_scheduled_ack_fault_redelivers;
          case "seeded INTA fault recovers through the machine"
            test_machine_inta_fault_recovers;
          case "masked line is the classified timeout" test_masked_line_times_out;
        ] );
      ( "monitor",
        [ case "queued drivers stay violation-free" test_async_drivers_pass_monitor ] );
    ]
