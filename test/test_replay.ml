(* Record/replay round-trip suite (DESIGN.md §10).

   The heart is a QCheck property over every bundled specification:
   random driver-op sequences run against a recording bus
   (Bus.recording over a seeded memory bus), then replayed from the
   tape with no memory bus behind it at all. The replay must
   reproduce per-op outcomes, a byte-identical trace JSONL, and the
   same final idempotent-cache contents — the strongest form of "the
   tape is the whole interaction".

   Around it: the faultcamp record_replay checks (a detected failure
   must replay from its tape to the identical driver-visible outcome —
   the PR's acceptance scenario), a seeded serialization-violation
   regression for the protocol monitor, the trace/tape JSONL
   round-trips with version rejection, and the DEVIL_TRACE /
   DEVIL_METRICS env-value parsers.

   DEVIL_QCHECK_COUNT scales the property iteration count. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Trace_export = Devil_runtime.Trace_export
module Monitor = Devil_runtime.Monitor
module Specs = Devil_specs.Specs
module Campaign = Faultcamp.Campaign

let qcount d =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> d)
  | None -> d

(* {1 Random driver ops}

   A reduced version of the differential suite's vocabulary — enough
   to drive every access shape through the bus (single, block,
   structure rebuilds, cache invalidation) without duplicating its
   whole generator. *)

type op =
  | Get of string
  | Set of string * Value.t
  | Get_struct of string
  | Read_block of string * int
  | Write_block of string * int array
  | Invalidate

let pp_op = function
  | Get n -> "get " ^ n
  | Set (n, v) -> Printf.sprintf "set %s := %s" n (Value.to_string v)
  | Get_struct n -> "get_struct " ^ n
  | Read_block (n, c) -> Printf.sprintf "read_block %s count:%d" n c
  | Write_block (n, d) ->
      Printf.sprintf "write_block %s [%s]" n
        (String.concat ";" (Array.to_list (Array.map string_of_int d)))
  | Invalidate -> "invalidate_cache"

let gen_value (ty : Dtype.t) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | Dtype.Bool -> map (fun b -> Value.Bool b) bool
  | Dtype.Int { signed; bits } ->
      let hi = (1 lsl min bits 16) - 1 in
      if signed then map (fun n -> Value.Int n) (int_range (-(hi / 2)) (hi / 2))
      else map (fun n -> Value.Int n) (int_range 0 hi)
  | Dtype.Int_set { values; _ } ->
      if values = [] then return (Value.Int 0)
      else map (fun v -> Value.Int v) (oneofl values)
  | Dtype.Enum cases ->
      if cases = [] then return (Value.Enum "EMPTY")
      else
        map
          (fun (c : Dtype.enum_case) -> Value.Enum c.case_name)
          (oneofl cases)

let gen_op (device : Ir.device) : op QCheck.Gen.t =
  let open QCheck.Gen in
  let pub_vars = Ir.public_vars device in
  let block_vars =
    List.filter (fun (v : Ir.var) -> v.v_behaviour.b_block) device.d_vars
  in
  let var_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (3, map (fun () -> Get v.v_name) unit);
          (3, map (fun value -> Set (v.v_name, value)) (gen_value v.v_type));
        ])
      pub_vars
  in
  let struct_ops =
    List.map
      (fun (s : Ir.strct) -> (2, map (fun () -> Get_struct s.s_name) unit))
      (Ir.public_structs device)
  in
  let block_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (1, map (fun c -> Read_block (v.v_name, c)) (int_range 0 6));
          ( 1,
            map
              (fun l -> Write_block (v.v_name, Array.of_list l))
              (list_size (int_range 0 6) (int_range 0 0xffff)) );
        ])
      block_vars
  in
  frequency (var_ops @ struct_ops @ block_ops @ [ (1, return Invalidate) ])

type outcome =
  | O_unit
  | O_value of Value.t
  | O_array of int array
  | O_error of string

let pp_outcome = function
  | O_unit -> "()"
  | O_value v -> Value.to_string v
  | O_array a ->
      "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]"
  | O_error m -> "error: " ^ m

let run_op inst op : outcome =
  try
    match op with
    | Get n -> O_value (Instance.get inst n)
    | Set (n, v) ->
        Instance.set inst n v;
        O_unit
    | Get_struct n ->
        Instance.get_struct inst n;
        O_unit
    | Read_block (n, count) -> O_array (Instance.read_block inst n ~count)
    | Write_block (n, data) ->
        Instance.write_block inst n data;
        O_unit
    | Invalidate ->
        Instance.invalidate_cache inst;
        O_unit
  with
  | Instance.Device_error m -> O_error ("device: " ^ m)
  | Bus.Bus_fault m -> O_error ("bus: " ^ m)
  | Not_found -> O_error "Not_found"
  | Invalid_argument m -> O_error ("invalid: " ^ m)

let bases_for (device : Ir.device) =
  let next = ref 16 in
  List.map
    (fun (p : Ir.port) ->
      let maxoff = List.fold_left max 0 p.p_offsets in
      let b = !next in
      next := !next + maxoff + 16;
      (p.p_name, b))
    device.Ir.d_ports

(* The live engine: seeded memory bus, taped by Bus.recording, then
   observed (so the trace sees the post-recording traffic exactly as
   the replay side will). *)
let build_recording ~seed device bases =
  let raw = Bus.memory ~size:4096 () in
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  for addr = 0 to 2047 do
    raw.Bus.write ~width:32 ~addr ~value:(Random.State.int rng 0x10000)
  done;
  let tape, taped = Bus.recording raw in
  let trace = Trace.create ~capacity:200_000 () in
  let inst =
    Instance.create ~label:"replay" ~trace device
      ~bus:(Bus.observed ~trace taped)
      ~bases
  in
  (inst, trace, tape)

(* The replay engine: no memory, no seeding — the tape is the whole
   device. *)
let build_replaying ~tape device bases =
  let trace = Trace.create ~capacity:200_000 () in
  let inst =
    Instance.create ~label:"replay" ~trace device
      ~bus:(Bus.observed ~trace (Bus.replaying tape))
      ~bases
  in
  (inst, trace)

let replay_property name (device : Ir.device) =
  let bases = bases_for device in
  let gen =
    QCheck.Gen.(
      pair (int_bound 0xffff) (list_size (int_range 1 25) (gen_op device)))
  in
  let print (seed, ops) =
    Printf.sprintf "seed:%d\n%s" seed
      (String.concat "\n" (List.map pp_op ops))
  in
  let shrink (seed, ops) =
    QCheck.Iter.map (fun ops -> (seed, ops)) (QCheck.Shrink.list ops)
  in
  let arb = QCheck.make ~print ~shrink gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "record = replay on %s" name)
    ~count:(qcount 30) arb
    (fun (seed, ops) ->
      let live, live_trace, tape = build_recording ~seed device bases in
      let live_out = List.map (run_op live) ops in
      let replay, replay_trace = build_replaying ~tape device bases in
      List.iteri
        (fun i op ->
          let o =
            try run_op replay op
            with Bus.Replay_divergence m -> O_error ("DIVERGENCE: " ^ m)
          in
          let expected = List.nth live_out i in
          if o <> expected then
            QCheck.Test.fail_reportf "op %d (%s): live %s, replay %s" i
              (pp_op op) (pp_outcome expected) (pp_outcome o))
        ops;
      (* Byte-identical persisted traces: the replay is
         indistinguishable from the recorded run even after export. *)
      let ja = Trace_export.to_jsonl live_trace
      and jb = Trace_export.to_jsonl replay_trace in
      if ja <> jb then
        QCheck.Test.fail_reportf "trace JSONL differs (live %d bytes, replay %d)"
          (String.length ja) (String.length jb);
      (* Same final idempotent-cache contents register by register. *)
      List.iter
        (fun (r : Ir.reg) ->
          let a = Instance.cached_raw live r.r_name
          and b = Instance.cached_raw replay r.r_name in
          if a <> b then
            QCheck.Test.fail_reportf "cached_raw %s: live %s, replay %s"
              r.r_name
              (match a with Some x -> string_of_int x | None -> "-")
              (match b with Some x -> string_of_int x | None -> "-"))
        device.Ir.d_regs;
      true)

let devices =
  [
    ("busmouse", Specs.busmouse ());
    ("ne2000", Specs.ne2000 ());
    ("ide", Specs.ide ());
    ("piix4_ide", Specs.piix4_ide ());
    ("dma8237", Specs.dma8237 ());
    ("pic8259", Specs.pic8259 ~master:true ());
    ("cs4236b", Specs.cs4236b ());
    ("permedia2", Specs.permedia2 ());
    ("uart16550", Specs.uart16550 ());
    ("mc146818", Specs.mc146818 ());
    ("i8042", Specs.i8042 ());
  ]

(* {1 Faultcamp record/replay: the acceptance scenario} *)

let test_campaign_replay () =
  let checks =
    List.concat_map
      (fun driver ->
        List.map
          (fun fault -> Campaign.record_replay ?fault ~driver ~seed:1 ())
          [ None; Some "transient"; Some "stuck-bits" ])
      (* Not [driver_workloads]: bus tapes carry transfers, not
         interrupt wires, so the async workloads cannot replay. *)
      Campaign.replayable_workloads
  in
  List.iter
    (fun (rc : Campaign.replay_check) ->
      Alcotest.(check bool)
        (Format.asprintf "outcome reproduced: %a" Campaign.pp_replay_check rc)
        true rc.rc_outcome_match;
      Alcotest.(check bool)
        (Format.asprintf "trace reproduced: %a" Campaign.pp_replay_check rc)
        true rc.rc_trace_match)
    checks;
  (* At least one of these trials is a detected failure — so the suite
     really does replay a faultcamp-detected failure to its identical
     outcome, not just clean runs. *)
  Alcotest.(check bool)
    "a detected failure was among the replayed trials" true
    (List.exists
       (fun (rc : Campaign.replay_check) ->
         String.length rc.rc_live >= 7 && String.sub rc.rc_live 0 7 = "failed:")
       checks)

(* {1 Monitor: seeded serialization violation}

   The differential suite proves zero violations on clean runs; this
   is the other half — a hand-fed stream that breaks a declared
   serialization order must be flagged. dma8237's address0 is the
   paper's own example: addr0_low must be written before addr0_high. *)

let test_monitor_flags_violation () =
  let mon = Monitor.create ~devices:[ ("dma", Specs.dma8237 ()) ] in
  Monitor.feed_all mon
    [
      {
        Trace.seq = 0;
        kind =
          Trace.Serialized
            { dev = "dma"; owner = "address0"; order = [ "addr0_low"; "addr0_high" ] };
      };
      { seq = 1; kind = Trace.Reg_write { dev = "dma"; reg = "addr0_high"; raw = 0 } };
      { seq = 2; kind = Trace.Reg_write { dev = "dma"; reg = "addr0_low"; raw = 0 } };
    ];
  match Monitor.violations mon with
  | [ v ] ->
      Alcotest.(check string) "rule" "serialization" v.Monitor.vl_rule;
      Alcotest.(check int) "flagged at the out-of-order write" 1 v.Monitor.vl_seq
  | vs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_monitor_accepts_order () =
  let mon = Monitor.create ~devices:[ ("dma", Specs.dma8237 ()) ] in
  Monitor.feed_all mon
    [
      {
        Trace.seq = 0;
        kind =
          Trace.Serialized
            { dev = "dma"; owner = "address0"; order = [ "addr0_low"; "addr0_high" ] };
      };
      { seq = 1; kind = Trace.Reg_write { dev = "dma"; reg = "addr0_low"; raw = 0 } };
      { seq = 2; kind = Trace.Reg_write { dev = "dma"; reg = "addr0_high"; raw = 0 } };
    ];
  Alcotest.(check int) "in-order write is clean" 0 (Monitor.violation_count mon)

(* {1 Trace / tape JSONL round-trips} *)

let sample_events =
  let open Trace in
  List.mapi
    (fun i kind -> { seq = i; kind })
    [
      Bus_read { addr = 0x1f7; width = 8; value = 0x58 };
      Bus_write { addr = 0x1f6; width = 8; value = 0xe0 };
      Bus_block_read { addr = 0x1f0; width = 16; count = 256 };
      Bus_block_write { addr = 0x1f0; width = 32; count = 128 };
      Reg_read { dev = "ide"; reg = "status_reg"; raw = 0x58 };
      Reg_write { dev = "ide"; reg = "command_reg"; raw = 0x20 };
      Var_read { dev = "ide"; var = "bsy" };
      Var_write { dev = "ide"; var = "command"; regs = [ "command_reg" ] };
      Struct_write
        {
          dev = "gfx";
          strct = "rect";
          fields = [ "x"; "y" ];
          regs = [ "rect_pos_reg" ];
        };
      Cache_hit { dev = "ide"; reg = "drive_head_reg" };
      Cache_miss { dev = "ide"; reg = "drive_head_reg" };
      Cache_invalidated { dev = "ide" };
      Action { dev = "dma"; owner = "addr0_low"; phase = Pre; assignments = 1 };
      Serialized { dev = "dma"; owner = "address0"; order = [ "a"; "b" ] };
      Poll { label = "ide: BSY clear"; iters = 3; ok = true; rid = 0 };
      Retry
        {
          label = "ide: read_sectors";
          attempt = 2;
          reason = "device fault";
          rid = 0;
        };
      Fault_injected
        { plan = "stuck-bits"; addr = 0x1f7; width = 8; detail = "0x50 -> 0x51" };
    ]

let test_event_jsonl_roundtrip () =
  let text = Trace_export.events_to_jsonl sample_events in
  match Trace_export.events_of_jsonl text with
  | Error why -> Alcotest.failf "parse failed: %s" why
  | Ok evs ->
      Alcotest.(check bool) "all events round-trip" true (evs = sample_events)

let test_jsonl_version_rejected () =
  let text = Trace_export.events_to_jsonl sample_events in
  let bumped =
    match String.index_opt text '\n' with
    | Some i ->
        "{\"devil_trace_version\":99}"
        ^ String.sub text i (String.length text - i)
    | None -> Alcotest.fail "no header line"
  in
  match Trace_export.events_of_jsonl bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a version-99 trace must be rejected, not misread"

let test_tape_jsonl_roundtrip () =
  let raw = Bus.memory ~size:64 () in
  let tape, bus = Bus.recording raw in
  bus.Bus.write ~width:8 ~addr:3 ~value:0xab;
  ignore (bus.Bus.read ~width:8 ~addr:3);
  bus.Bus.write_block ~width:16 ~addr:5 ~from:[| 1; 2; 3 |];
  let into = Array.make 3 0 in
  bus.Bus.read_block ~width:16 ~addr:5 ~into;
  (try ignore (bus.Bus.read ~width:8 ~addr:4096)
   with Bus.Bus_fault _ -> ());
  let text = Trace_export.tape_to_jsonl tape in
  match Trace_export.tape_of_jsonl text with
  | Error why -> Alcotest.failf "tape parse failed: %s" why
  | Ok tape' ->
      Alcotest.(check int) "length" (Bus.tape_length tape) (Bus.tape_length tape');
      Alcotest.(check string)
        "re-serialization is identical" text
        (Trace_export.tape_to_jsonl tape')

let test_chrome_export_smoke () =
  let text = Trace_export.to_chrome sample_events in
  Alcotest.(check bool)
    "has a traceEvents array" true
    (String.length text > 2
    &&
    let re = "traceEvents" in
    let rec find i =
      i + String.length re <= String.length text
      && (String.sub text i (String.length re) = re || find (i + 1))
    in
    find 0)

(* {1 DEVIL_TRACE / DEVIL_METRICS env parsing} *)

let test_trace_env_parse () =
  let ok v = Trace.parse_env_value v in
  Alcotest.(check bool) "off disables" true (ok "off" = Ok None);
  Alcotest.(check bool) "0 disables" true (ok "0" = Ok None);
  Alcotest.(check bool) "empty disables" true (ok "" = Ok None);
  Alcotest.(check bool)
    "on enables with the default capacity" true
    (ok "on" = Ok (Some Trace.default_capacity));
  Alcotest.(check bool)
    "1 enables with the default capacity" true
    (ok "1" = Ok (Some Trace.default_capacity));
  Alcotest.(check bool) "integer is a capacity" true (ok "4096" = Ok (Some 4096));
  Alcotest.(check bool) "case/space-insensitive" true
    (ok "  ON " = Ok (Some Trace.default_capacity));
  (match ok "banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed value must be an Error");
  match ok "-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative capacity must be an Error"

let test_metrics_env_parse () =
  let module M = Devil_runtime.Metrics in
  Alcotest.(check bool) "off disables" true (M.parse_env_value "no" = Ok false);
  Alcotest.(check bool) "on enables" true (M.parse_env_value "TRUE" = Ok true);
  match M.parse_env_value "maybe" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed value must be an Error"

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "replay"
    [
      ( "roundtrip",
        List.map
          (fun (name, device) ->
            QCheck_alcotest.to_alcotest (replay_property name device))
          devices );
      ("faultcamp", [ case "record_replay across the matrix" test_campaign_replay ]);
      ( "monitor",
        [
          case "flags an out-of-order serialized write"
            test_monitor_flags_violation;
          case "accepts the declared order" test_monitor_accepts_order;
        ] );
      ( "persist",
        [
          case "event JSONL round-trip" test_event_jsonl_roundtrip;
          case "newer version rejected" test_jsonl_version_rejected;
          case "tape JSONL round-trip" test_tape_jsonl_roundtrip;
          case "chrome export smoke" test_chrome_export_smoke;
        ] );
      ( "env",
        [
          case "DEVIL_TRACE parser" test_trace_env_parse;
          case "DEVIL_METRICS parser" test_metrics_env_parse;
        ] );
    ]
