(* The span-profiler suite (DESIGN.md §11).

   Four angles:

   - Metrics percentile estimation: exact expectations at the
     power-of-two bucket boundaries, the single-sample clamp, and the
     empty-histogram None.
   - Span arithmetic under a deterministic substituted clock: the
     self/total split, the attributed = total identity, the call-path
     trie shape, [leaf] attribution, and exception safety.
   - Transparency: a QCheck property that running ANY random op
     sequence with the profiler enabled produces exactly the same
     outcomes and the same trace stream as without it, on both
     engines — the profiler observes, it must never perturb. Plus the
     disabled-path discipline: [Bus.observed] with no handles is
     physically the identity.
   - Exporters: folded stacks and speedscope JSON from a profile with
     known arithmetic. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Profile = Devil_runtime.Profile
module Trace_export = Devil_runtime.Trace_export
module Specs = Devil_specs.Specs

let qcount d =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> d)
  | None -> d

(* {1 Metrics percentiles} *)

let test_bucket_boundaries () =
  Alcotest.(check int) "bucket_upper 0" 0 (Metrics.bucket_upper 0);
  Alcotest.(check int) "bucket_upper 1" 1 (Metrics.bucket_upper 1);
  Alcotest.(check int) "bucket_upper 2" 3 (Metrics.bucket_upper 2);
  Alcotest.(check int) "bucket_upper 3" 7 (Metrics.bucket_upper 3);
  (* bucket_of and bucket_upper agree: a bucket's upper bound falls in
     that bucket, and upper+1 falls in the next. *)
  for i = 1 to 16 do
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (bucket_upper %d)" i)
      i
      (Metrics.bucket_of (Metrics.bucket_upper i));
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (bucket_upper %d + 1)" i)
      (i + 1)
      (Metrics.bucket_of (Metrics.bucket_upper i + 1))
  done;
  Alcotest.(check int) "bucket_of 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "bucket_of -5" 0 (Metrics.bucket_of (-5))

let test_percentile_1_to_8 () =
  let m = Metrics.create () in
  for v = 1 to 8 do
    Metrics.observe m "h" v
  done;
  (* rank ceil(0.5 * 8) = 4 lands in bucket 3 (samples 4..7), whose
     upper bound is 7 and needs no clamping. *)
  Alcotest.(check (option int)) "p50 of 1..8" (Some 7)
    (Metrics.percentile m "h" 0.5);
  (* rank 8 lands in bucket 4 (upper 15), clamped to the observed max. *)
  Alcotest.(check (option int)) "p95 of 1..8" (Some 8)
    (Metrics.percentile m "h" 0.95);
  Alcotest.(check (option int)) "p99 of 1..8" (Some 8)
    (Metrics.percentile m "h" 0.99);
  (* rank 1 lands in bucket 1 (upper 1), clamped up to the min = 1. *)
  Alcotest.(check (option int)) "p0.01 of 1..8" (Some 1)
    (Metrics.percentile m "h" 0.01)

let test_percentile_single_sample () =
  List.iter
    (fun v ->
      let m = Metrics.create () in
      Metrics.observe m "h" v;
      List.iter
        (fun q ->
          Alcotest.(check (option int))
            (Printf.sprintf "q%.2f of single %d" q v)
            (Some v)
            (Metrics.percentile m "h" q))
        [ 0.5; 0.95; 0.99 ])
    [ 0; 1; 5; 1000; 123_456 ]

let test_percentile_empty () =
  let m = Metrics.create () in
  Alcotest.(check (option int)) "p50 of nothing" None
    (Metrics.percentile m "h" 0.5);
  Alcotest.(check bool) "histogram of nothing" true
    (Metrics.histogram m "h" = None);
  (* A present-but-foreign histogram does not leak into "h". *)
  Metrics.observe m "other" 3;
  Alcotest.(check (option int)) "p50 still None" None
    (Metrics.percentile m "h" 0.5)

let test_hist_snapshot_percentiles () =
  let m = Metrics.create () in
  List.iter (fun v -> Metrics.observe m "h" v) [ 10; 20; 30; 40; 1000 ];
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 5 h.Metrics.count;
      Alcotest.(check int) "min" 10 h.Metrics.min;
      Alcotest.(check int) "max" 1000 h.Metrics.max;
      Alcotest.(check int)
        "snapshot p50 = percentile 0.5"
        (Option.get (Metrics.percentile m "h" 0.5))
        h.Metrics.p50;
      Alcotest.(check int)
        "snapshot p95 = percentile 0.95"
        (Option.get (Metrics.percentile m "h" 0.95))
        h.Metrics.p95;
      Alcotest.(check int)
        "snapshot p99 = percentile 0.99"
        (Option.get (Metrics.percentile m "h" 0.99))
        h.Metrics.p99

(* {1 Span arithmetic under a deterministic clock} *)

(* A profiler whose clock is a mutable cell the test advances by
   hand — every duration below is exact, no tolerance needed. *)
let clocked () =
  let now = ref 0 in
  let p = Profile.create () in
  Profile.set_clock p (fun () -> !now);
  (p, now)

let test_span_arithmetic () =
  let p, now = clocked () in
  let a = Profile.enter p "a" in
  now := 100;
  let b = Profile.enter p "b" in
  now := 130;
  Profile.exit p b;
  now := 150;
  Profile.exit p a;
  Alcotest.(check int) "total" 150 (Profile.total_ns p);
  Alcotest.(check int) "attributed = total" 150 (Profile.attributed_ns p);
  Alcotest.(check int) "live_depth" 0 (Profile.live_depth p);
  Alcotest.(check int) "unbalanced_exits" 0 (Profile.unbalanced_exits p);
  let site key =
    match Profile.site p key with
    | Some s -> s
    | None -> Alcotest.fail ("missing site " ^ key)
  in
  let sa = site "a" and sb = site "b" in
  Alcotest.(check int) "a calls" 1 sa.Profile.calls;
  Alcotest.(check int) "a total" 150 sa.Profile.total_ns;
  Alcotest.(check int) "a self" 120 sa.Profile.self_ns;
  Alcotest.(check int) "b total" 30 sb.Profile.total_ns;
  Alcotest.(check int) "b self" 30 sb.Profile.self_ns;
  Alcotest.(check int) "b p50 clamps to the sample" 30 sb.Profile.p50_ns;
  (* Trie shape: one root "a" with one child "b". *)
  match Profile.roots p with
  | [ ra ] -> (
      Alcotest.(check string) "root name" "a" (Profile.node_name ra);
      Alcotest.(check int) "root total" 150 (Profile.node_total_ns ra);
      Alcotest.(check int) "root self" 120 (Profile.node_self_ns ra);
      match Profile.node_children ra with
      | [ rb ] ->
          Alcotest.(check string) "child name" "b" (Profile.node_name rb);
          Alcotest.(check int) "child total" 30 (Profile.node_total_ns rb)
      | kids ->
          Alcotest.fail (Printf.sprintf "expected 1 child, got %d"
                           (List.length kids)))
  | roots ->
      Alcotest.fail (Printf.sprintf "expected 1 root, got %d"
                       (List.length roots))

let test_span_leaf_and_siblings () =
  let p, now = clocked () in
  Profile.span p "op" (fun () ->
      now := 40;
      Profile.leaf p "bus" 15;
      Profile.span p "sub" (fun () -> now := 100);
      now := 120);
  (* op total 120; children: bus 15 (externally timed) + sub 60;
     self = 120 - 75 = 45. *)
  let s key = Option.get (Profile.site p key) in
  Alcotest.(check int) "op self" 45 (s "op").Profile.self_ns;
  Alcotest.(check int) "bus self" 15 (s "bus").Profile.self_ns;
  Alcotest.(check int) "sub self" 60 (s "sub").Profile.self_ns;
  Alcotest.(check int) "attributed = total" (Profile.total_ns p)
    (Profile.attributed_ns p);
  (* The same key under two parents is two trie nodes but one site. *)
  Profile.span p "op2" (fun () ->
      Profile.span p "sub" (fun () -> now := !now + 5));
  Alcotest.(check int) "sub called twice" 2 (s "sub").Profile.calls;
  let rec count_named name nodes =
    List.fold_left
      (fun acc n ->
        (if Profile.node_name n = name then 1 else 0)
        + acc
        + count_named name (Profile.node_children n))
      0 nodes
  in
  Alcotest.(check int) "two 'sub' trie nodes" 2
    (count_named "sub" (Profile.roots p))

let test_span_exception_safety () =
  let p, now = clocked () in
  (try
     Profile.span p "outer" (fun () ->
         let _inner = Profile.enter p "inner" in
         now := 50;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "live_depth after raise" 0 (Profile.live_depth p);
  Alcotest.(check int) "unbalanced_exits" 0 (Profile.unbalanced_exits p);
  (* The abandoned inner span was closed by its parent's exit. *)
  Alcotest.(check int) "inner recorded" 1
    (Option.get (Profile.site p "inner")).Profile.calls;
  Alcotest.(check int) "attributed = total" (Profile.total_ns p)
    (Profile.attributed_ns p)

let test_span_metrics_link () =
  let m = Metrics.create () in
  let p = Profile.create ~metrics:m () in
  let now = ref 0 in
  Profile.set_clock p (fun () -> !now);
  Profile.span p "op" (fun () -> now := 37);
  match Metrics.histogram m "span.op.ns" with
  | None -> Alcotest.fail "span histogram missing from the registry"
  | Some h ->
      Alcotest.(check int) "one sample" 1 h.Metrics.count;
      Alcotest.(check int) "p50 is the sample" 37 h.Metrics.p50;
      (* The JSON export carries the dotted percentile keys. *)
      let json = Metrics.to_json m in
      let has needle =
        let rec go i =
          i + String.length needle <= String.length json
          && (String.sub json i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "\"p95\" in to_json" true (has "\"p95\"")

(* {1 Bus.observed identity} *)

let test_bus_observed_identity () =
  let bus = Bus.memory ~size:64 () in
  Alcotest.(check bool) "no handles: physically the same bus" true
    (Bus.observed bus == bus);
  let p = Profile.create () in
  Alcotest.(check bool) "with a profiler: a new wrapper" true
    (Bus.observed ~profile:p bus != bus)

(* {1 Transparency: the profiler never perturbs the run} *)

let gen_value (ty : Dtype.t) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | Dtype.Bool -> map (fun b -> Value.Bool b) bool
  | Dtype.Int { signed; bits } ->
      let hi = (1 lsl min bits 16) - 1 in
      if signed then map (fun n -> Value.Int n) (int_range (-(hi / 2)) (hi / 2))
      else map (fun n -> Value.Int n) (int_range 0 hi)
  | Dtype.Int_set { values; _ } ->
      if values = [] then return (Value.Int 0)
      else map (fun v -> Value.Int v) (oneofl values)
  | Dtype.Enum cases ->
      if cases = [] then return (Value.Enum "EMPTY")
      else
        map
          (fun (c : Dtype.enum_case) -> Value.Enum c.case_name)
          (oneofl cases)

type op =
  | Get of string
  | Set of string * Value.t
  | Get_struct of string
  | Read_block of string * int
  | Write_block of string * int array
  | Invalidate

let pp_op = function
  | Get n -> "get " ^ n
  | Set (n, v) -> Printf.sprintf "set %s := %s" n (Value.to_string v)
  | Get_struct n -> "get_struct " ^ n
  | Read_block (n, c) -> Printf.sprintf "read_block %s count:%d" n c
  | Write_block (n, d) ->
      Printf.sprintf "write_block %s len:%d" n (Array.length d)
  | Invalidate -> "invalidate_cache"

let gen_op (device : Ir.device) : op QCheck.Gen.t =
  let open QCheck.Gen in
  let pub_vars = Ir.public_vars device in
  let pub_structs = Ir.public_structs device in
  let block_vars =
    List.filter (fun (v : Ir.var) -> v.v_behaviour.b_block) device.d_vars
  in
  let var_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (3, map (fun () -> Get v.v_name) unit);
          (3, map (fun value -> Set (v.v_name, value)) (gen_value v.v_type));
        ])
      pub_vars
  in
  let struct_ops =
    List.map
      (fun (s : Ir.strct) -> (2, map (fun () -> Get_struct s.s_name) unit))
      pub_structs
  in
  let block_ops =
    List.concat_map
      (fun (v : Ir.var) ->
        [
          (1, map (fun c -> Read_block (v.v_name, c)) (int_range 0 6));
          ( 1,
            map
              (fun l -> Write_block (v.v_name, Array.of_list l))
              (list_size (int_range 0 6) (int_range 0 0xffff)) );
        ])
      block_vars
  in
  frequency (var_ops @ struct_ops @ block_ops @ [ (1, return Invalidate) ])

type outcome =
  | O_unit
  | O_value of Value.t
  | O_array of int array
  | O_error of string

let pp_outcome = function
  | O_unit -> "()"
  | O_value v -> Value.to_string v
  | O_array a ->
      "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]"
  | O_error m -> "error: " ^ m

let run_op inst op : outcome =
  try
    match op with
    | Get n -> O_value (Instance.get inst n)
    | Set (n, v) ->
        Instance.set inst n v;
        O_unit
    | Get_struct n ->
        Instance.get_struct inst n;
        O_unit
    | Read_block (n, count) -> O_array (Instance.read_block inst n ~count)
    | Write_block (n, data) ->
        Instance.write_block inst n data;
        O_unit
    | Invalidate ->
        Instance.invalidate_cache inst;
        O_unit
  with
  | Instance.Device_error m -> O_error ("device: " ^ m)
  | Bus.Bus_fault m -> O_error ("bus: " ^ m)
  | Not_found -> O_error "Not_found"
  | Invalid_argument m -> O_error ("invalid: " ^ m)

let bases_for (device : Ir.device) =
  let next = ref 16 in
  List.map
    (fun (p : Ir.port) ->
      let maxoff = List.fold_left max 0 p.p_offsets in
      let b = !next in
      next := !next + maxoff + 16;
      (p.p_name, b))
    device.Ir.d_ports

let build_engine ?profile ~interpret ~seed (device : Ir.device) bases =
  let raw = Bus.memory ~size:4096 () in
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  for addr = 0 to 2047 do
    raw.Bus.write ~width:32 ~addr ~value:(Random.State.int rng 0x10000)
  done;
  let trace = Trace.create ~capacity:200_000 () in
  let bus = Bus.observed ~trace ?profile raw in
  let inst =
    Instance.create ~label:"prof" ~trace ?profile ~interpret device ~bus ~bases
  in
  (inst, trace)

let transparency_property name (device : Ir.device) =
  let bases = bases_for device in
  let gen =
    QCheck.Gen.(
      triple (int_bound 0xffff) bool
        (list_size (int_range 1 25) (gen_op device)))
  in
  let print (seed, interpret, ops) =
    Printf.sprintf "seed:%d interpret:%b\n%s" seed interpret
      (String.concat "\n" (List.map pp_op ops))
  in
  let arb = QCheck.make ~print gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "profiler is transparent on %s" name)
    ~count:(qcount 40) arb
    (fun (seed, interpret, ops) ->
      let profile = Profile.create () in
      let plain, tp = build_engine ~interpret ~seed device bases in
      let profiled, tq =
        build_engine ~profile ~interpret ~seed device bases
      in
      List.iteri
        (fun i op ->
          let a = run_op plain op in
          let b = run_op profiled op in
          if a <> b then
            QCheck.Test.fail_reportf "op %d (%s): plain %s, profiled %s" i
              (pp_op op) (pp_outcome a) (pp_outcome b))
        ops;
      if Trace.events tp <> Trace.events tq then
        QCheck.Test.fail_reportf "trace streams diverge under the profiler";
      (* And the profiler itself stayed coherent while observing. *)
      if Profile.live_depth profile <> 0 then
        QCheck.Test.fail_reportf "profiler left %d spans open"
          (Profile.live_depth profile);
      if Profile.unbalanced_exits profile <> 0 then
        QCheck.Test.fail_reportf "%d unbalanced exits"
          (Profile.unbalanced_exits profile);
      let total = Profile.total_ns profile in
      let attributed = Profile.attributed_ns profile in
      if total > 0 && attributed * 100 < total * 95 then
        QCheck.Test.fail_reportf
          "only %d of %d ns attributed (< 95%%)" attributed total;
      if attributed > total then
        QCheck.Test.fail_reportf "attributed %d ns > total %d ns" attributed
          total;
      true)

(* {1 Exporters} *)

let test_exporters () =
  let p, now = clocked () in
  Profile.span p "root" (fun () ->
      now := 10;
      Profile.span p "kid" (fun () -> now := 40);
      now := 100);
  let folded = Trace_export.profile_to_folded p in
  Alcotest.(check string) "folded stacks" "root 70\nroot;kid 30\n" folded;
  let ss = Trace_export.profile_to_speedscope ~name:"t" p in
  match Trace_export.json_of_string ss with
  | Error e -> Alcotest.fail ("speedscope JSON does not parse: " ^ e)
  | Ok json -> (
      match json with
      | Trace_export.Obj fields ->
          Alcotest.(check bool) "$schema present" true
            (List.mem_assoc "$schema" fields);
          Alcotest.(check bool) "shared present" true
            (List.mem_assoc "shared" fields);
          Alcotest.(check bool) "profiles present" true
            (List.mem_assoc "profiles" fields)
      | _ -> Alcotest.fail "speedscope document is not an object")

let () =
  let devices = [ ("uart16550", Specs.uart16550 ()); ("ide", Specs.ide ()) ] in
  Alcotest.run "profile"
    [
      ( "percentiles",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "samples 1..8" `Quick test_percentile_1_to_8;
          Alcotest.test_case "single sample" `Quick
            test_percentile_single_sample;
          Alcotest.test_case "empty histogram" `Quick test_percentile_empty;
          Alcotest.test_case "snapshot percentiles" `Quick
            test_hist_snapshot_percentiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "self/total arithmetic" `Quick
            test_span_arithmetic;
          Alcotest.test_case "leaves and sibling nodes" `Quick
            test_span_leaf_and_siblings;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "metrics link" `Quick test_span_metrics_link;
          Alcotest.test_case "Bus.observed identity" `Quick
            test_bus_observed_identity;
        ] );
      ( "transparency",
        List.map
          (fun (name, device) ->
            QCheck_alcotest.to_alcotest (transparency_property name device))
          devices );
      ( "exporters",
        [ Alcotest.test_case "folded + speedscope" `Quick test_exporters ] );
    ]
