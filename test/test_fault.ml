(* The fault-injection bus and the recovery policies: per-class fault
   semantics, the injection trace and its counters, retry-based
   recovery, an end-to-end IDE recovery under a transient burst, and a
   smoke run of the fault campaign. *)

module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Bus = Devil_runtime.Bus
module Machine = Drivers.Machine
module Campaign = Faultcamp.Campaign

let case name f = Alcotest.test_case name `Quick f

let rd bus ~addr = bus.Bus.read ~width:8 ~addr
let wr bus ~addr value = bus.Bus.write ~width:8 ~addr ~value

(* {1 Fault-class semantics}

   Each class is exercised with probability 1.0 (or no draw at all) on
   a RAM-backed bus, so the expected mutation is exact. *)

let test_stuck_bits () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"stuck" ~ops:[ Fault.Read ] ~first:0 ~last:3
            (Fault.Stuck_bits { and_mask = lnot 0x02; or_mask = 0x01 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:0 0x06;
  Alcotest.(check int) "bit1 stuck low, bit0 stuck high" 0x05
    (rd bus ~addr:0);
  Alcotest.(check int) "one injection" 1 (Fault.injection_count inj);
  wr bus ~addr:10 0x06;
  Alcotest.(check int) "outside the window: unperturbed" 0x06
    (rd bus ~addr:10);
  (* A value the masks leave unchanged must not count as a fault. *)
  wr bus ~addr:1 0x05;
  Alcotest.(check int) "already-stuck value fires nothing" 0x05
    (rd bus ~addr:1);
  Alcotest.(check int) "counter unchanged" 1 (Fault.injections_for inj "stuck")

let test_flip_bits () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x81; probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:0 0x10;
  Alcotest.(check int) "mask xored into the read" 0x91 (rd bus ~addr:0);
  Alcotest.(check int) "write side untouched" 1 (Fault.injection_count inj)

let test_drop_write () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"drop" ~ops:[ Fault.Write ] ~budget:1 ~first:1
            ~last:1
            (Fault.Drop_write { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:1 0xaa;
  Alcotest.(check int) "first write never lands" 0 (rd bus ~addr:1);
  wr bus ~addr:1 0xbb;
  Alcotest.(check int) "budget spent: second write lands" 0xbb
    (rd bus ~addr:1);
  Alcotest.(check int) "one injection" 1 (Fault.injection_count inj)

let test_duplicate_write () =
  let metrics = Devil_runtime.Metrics.create () in
  let counted = Bus.observed ~metrics (Bus.memory ()) in
  let count () = Devil_runtime.Metrics.count metrics "bus.writes" in
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"dup" ~ops:[ Fault.Write ] ~budget:1 ~first:2
            ~last:2
            (Fault.Duplicate_write { probability = 1.0 });
        ]
      counted
  in
  let bus = Fault.bus inj in
  wr bus ~addr:2 7;
  Alcotest.(check int) "the device saw the write twice" 2 (count ());
  wr bus ~addr:2 8;
  Alcotest.(check int) "budget spent: single write" 3 (count ())

let test_transient () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"transient" ~budget:2 ~first:0 ~last:3
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let faulted f = match f () with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "first access aborts" true
    (faulted (fun () -> rd bus ~addr:0));
  Alcotest.(check bool) "second access aborts" true
    (faulted (fun () -> wr bus ~addr:1 5));
  (* The aborted write must not have reached the device. *)
  Alcotest.(check int) "aborted write never landed" 0 (rd bus ~addr:1);
  wr bus ~addr:1 5;
  Alcotest.(check int) "bus healthy after the burst" 5 (rd bus ~addr:1);
  Alcotest.(check int) "two injections" 2 (Fault.injection_count inj)

(* {1 Trace and counters} *)

let test_trace_and_reset () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x01; probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  for _ = 1 to 3 do
    ignore (rd bus ~addr:0)
  done;
  let events = Fault.events inj in
  Alcotest.(check int) "three events" 3 (List.length events);
  let seqs = List.map (fun (e : Fault.event) -> e.seq) events in
  Alcotest.(check bool) "sequence numbers increase" true
    (List.sort compare seqs = seqs && List.sort_uniq compare seqs = seqs);
  List.iter
    (fun (e : Fault.event) ->
      Alcotest.(check string) "label" "flip" e.plan_label;
      Alcotest.(check int) "address" 0 e.addr;
      Alcotest.(check bool) "detail rendered" true
        (String.length (Format.asprintf "%a" Fault.pp_event e) > 0))
    events;
  Alcotest.(check bool) "operations counted" true (Fault.operations inj >= 3);
  Fault.reset inj;
  Alcotest.(check int) "reset clears the trace" 0
    (List.length (Fault.events inj));
  Alcotest.(check int) "reset clears counters" 0 (Fault.injection_count inj)

let test_reset_restores_budget () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"t" ~budget:1 ~first:0 ~last:0
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  (try ignore (rd bus ~addr:0) with Fault.Bus_fault _ -> ());
  ignore (rd bus ~addr:0);
  Fault.reset inj;
  let refired =
    match rd bus ~addr:0 with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "budget restored by reset" true refired

(* {1 Scheduled (exploration) mode}

   The deterministic injection surface Explore enumerates: an
   injection names the exact covered ordinal that must fault, so every
   expectation here is exact. *)

let test_scheduled_exact_ordinal () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~op:Fault.Read ~at:2 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:0 0x42;
  Alcotest.(check int) "ordinal 0 passes" 0x42 (rd bus ~addr:0);
  Alcotest.(check int) "ordinal 1 passes" 0x42 (rd bus ~addr:0);
  let aborted =
    match rd bus ~addr:0 with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "exactly ordinal 2 aborts" true aborted;
  Alcotest.(check int) "ordinal 3 passes again" 0x42 (rd bus ~addr:0);
  Alcotest.(check int) "one scheduled hit" 1 (Fault.scheduled_hits inj);
  Alcotest.(check int) "no misses" 0 (List.length (Fault.scheduled_misses inj))

let test_scheduled_window_and_direction () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~label:"w" ~op:Fault.Write ~at:1 ~first:4 ~last:7
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  (* Outside the window and wrong direction: never counted. *)
  wr bus ~addr:0 1;
  wr bus ~addr:3 2;
  ignore (rd bus ~addr:5);
  wr bus ~addr:5 3 (* covered ordinal 0 *);
  Alcotest.(check int) "ordinal 0 landed" 3 (rd bus ~addr:5);
  let aborted =
    match wr bus ~addr:6 9 with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "second covered write aborts" true aborted;
  Alcotest.(check int) "aborted write never landed" 0 (rd bus ~addr:6);
  Alcotest.(check int) "covered traffic counted" 2 (Fault.seen_for inj "w")

let test_scheduled_miss_reported () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~label:"far" ~op:Fault.Read ~at:10 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  ignore (rd bus ~addr:0);
  ignore (rd bus ~addr:0);
  Alcotest.(check int) "never reached: no hit" 0 (Fault.scheduled_hits inj);
  (match Fault.scheduled_misses inj with
  | [ m ] -> Alcotest.(check string) "the miss is reported" "far" m.Fault.sx_label
  | ms -> Alcotest.failf "expected one miss, got %d" (List.length ms));
  Alcotest.(check int) "horizon is the traffic seen" 2
    (Fault.seen_for inj "far")

let test_scheduled_block_element () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~op:Fault.Read ~at:2 ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x80; probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:0 0x11;
  let into = Array.make 4 0 in
  bus.Bus.read_block ~width:8 ~addr:0 ~into;
  Alcotest.(check (array int)) "only element 2 of the burst is flipped"
    [| 0x11; 0x11; 0x91; 0x11 |] into;
  Alcotest.(check int) "one hit" 1 (Fault.scheduled_hits inj)

let test_scheduled_transient_aborts_burst () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~op:Fault.Write ~at:2 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let aborted =
    match bus.Bus.write_block ~width:8 ~addr:0 ~from:[| 1; 2; 3; 4 |] with
    | () -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "mid-burst transient aborts the burst" true aborted;
  (* Pre-device abort: no element of the burst landed. *)
  Alcotest.(check int) "no element landed" 0 (rd bus ~addr:0);
  Fault.reset inj;
  let refired =
    match bus.Bus.write_block ~width:8 ~addr:0 ~from:[| 1; 2; 3; 4 |] with
    | () -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "reset rearms the schedule" true refired;
  Alcotest.(check int) "rearmed hit counted" 1 (Fault.scheduled_hits inj)

(* {1 Snapshot / restore and PRNG rewind} *)

(* The firing pattern of a probabilistic plan over [n] reads — the
   PRNG fingerprint used to check rewind semantics. *)
let fire_pattern bus inj n =
  List.init n (fun _ ->
      let before = Fault.injection_count inj in
      ignore (rd bus ~addr:0);
      Fault.injection_count inj > before)

let test_reset_rewinds_prng () =
  let inj =
    Fault.wrap ~seed:11
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~first:0 ~last:0
            (Fault.Flip_bits { mask = 0x01; probability = 0.5 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let a = fire_pattern bus inj 32 in
  Fault.reset inj;
  let b = fire_pattern bus inj 32 in
  Alcotest.(check (list bool)) "reset rewinds the PRNG: identical pattern" a b;
  Alcotest.(check bool) "the pattern is non-trivial" true
    (List.mem true a && List.mem false a)

let test_snapshot_restore () =
  let inj =
    Fault.wrap ~seed:3
      ~plans:
        [
          Fault.plan ~label:"flip" ~ops:[ Fault.Read ] ~budget:6 ~first:0
            ~last:0
            (Fault.Flip_bits { mask = 0x01; probability = 0.5 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  ignore (fire_pattern bus inj 8);
  let snap = Fault.snapshot inj in
  let mid_count = Fault.injection_count inj in
  let a = fire_pattern bus inj 16 in
  Fault.restore inj snap;
  Alcotest.(check int) "restore rewinds the counters" mid_count
    (Fault.injection_count inj);
  let b = fire_pattern bus inj 16 in
  Alcotest.(check (list bool)) "restore rewinds PRNG and budgets" a b

(* Snapshot/restore in scheduled mode with a pending ordinal: the
   per-injection progress (operations seen, fired-or-not) must rewind
   with the snapshot, so an exploration can re-drive the same decision
   from a mid-workload checkpoint and see it fire at the same covered
   operation again. *)
let test_scheduled_snapshot_restore_pending () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~label:"t2" ~op:Fault.Read ~at:2 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  wr bus ~addr:0 0x5a;
  ignore (rd bus ~addr:0);
  (* Checkpoint with the decision pending: one covered op seen, ordinal
     2 still ahead. *)
  let snap = Fault.snapshot inj in
  Alcotest.(check int) "one covered op at the checkpoint" 1
    (Fault.seen_for inj "t2");
  ignore (rd bus ~addr:0);
  let fired_first =
    match rd bus ~addr:0 with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "fires at ordinal 2 on the first drive" true
    fired_first;
  Alcotest.(check int) "hit recorded" 1 (Fault.scheduled_hits inj);
  Fault.restore inj snap;
  Alcotest.(check int) "restore rewinds the hit count" 0
    (Fault.scheduled_hits inj);
  Alcotest.(check int) "restore rewinds the covered-op counter" 1
    (Fault.seen_for inj "t2");
  (* Re-drive: the decision must fire again, at the same ordinal. *)
  Alcotest.(check int) "ordinal 1 passes again" 0x5a (rd bus ~addr:0);
  let fired_again =
    match rd bus ~addr:0 with
    | _ -> false
    | exception Fault.Bus_fault _ -> true
  in
  Alcotest.(check bool) "fires at ordinal 2 on the re-drive" true fired_again;
  Alcotest.(check int) "exactly one hit after the re-drive" 1
    (Fault.scheduled_hits inj);
  Alcotest.(check int) "no misses outstanding" 0
    (List.length (Fault.scheduled_misses inj))

let test_restore_validates_shape () =
  let mk plans = Fault.wrap ~plans (Bus.memory ()) in
  let inj1 =
    mk [ Fault.plan ~label:"a" ~first:0 ~last:0 (Fault.Transient { probability = 1.0 }) ]
  in
  let inj2 = mk [] in
  let snap = Fault.snapshot inj1 in
  let rejected =
    match Fault.restore inj2 snap with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "foreign snapshot rejected" true rejected

(* {1 Recovery combinators against a faulty bus} *)

let test_with_retries_recovers () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"t" ~budget:2 ~first:0 ~last:0
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let v = Policy.with_retries ~label:"read" (fun () -> rd bus ~addr:0) in
  Alcotest.(check int) "third attempt reads through" 0 v;
  Alcotest.(check int) "both faults were absorbed" 2
    (Fault.injection_count inj)

let test_with_retries_exhausts () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"t" ~first:0 ~last:0
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let degraded =
    match Policy.with_retries ~label:"read" (fun () -> rd bus ~addr:0) with
    | _ -> false
    | exception Policy.Driver_error (Policy.Degraded _) -> true
  in
  Alcotest.(check bool) "unbounded faults end in Degraded" true degraded;
  Alcotest.(check int) "one injection per attempt"
    (Policy.default_attempts ())
    (Fault.injection_count inj)

(* {1 Nested recovery boundaries}

   Drivers compose [guarded] and [with_retries] — a protected entry
   point calling another protected helper. The budgets must compose
   additively (the inner exhaustion is terminal, not transparently
   retried by the outer layer) and the classification must keep the
   innermost label. *)

let test_nested_retries_compose_not_multiply () =
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"t" ~first:0 ~last:0
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let degraded =
    match
      Policy.with_retries ~attempts:3 ~label:"outer" (fun () ->
          Policy.with_retries ~attempts:2 ~label:"inner" (fun () ->
              rd bus ~addr:0))
    with
    | _ -> false
    | exception Policy.Driver_error (Policy.Degraded _) -> true
  in
  Alcotest.(check bool) "ends Degraded" true degraded;
  (* Degraded is not transient, so the outer layer must not retry the
     inner exhaustion: 2 bus attempts, not 3 * 2. *)
  Alcotest.(check int) "inner budget only — bounds add, not multiply" 2
    (Fault.injection_count inj)

let test_nested_guarded_keeps_inner_label () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~op:Fault.Read ~at:0 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  let msg =
    match
      Policy.guarded ~label:"outer" (fun () ->
          Policy.guarded ~label:"inner" (fun () -> rd bus ~addr:0))
    with
    | _ -> "no error"
    | exception Policy.Driver_error (Policy.Bus_fault m) -> m
  in
  Alcotest.(check bool) "classified once, at the inner boundary" true
    (String.length msg >= 5 && String.sub msg 0 5 = "inner");
  Alcotest.(check bool) "not rewrapped by the outer boundary" true
    (not
       (String.length msg >= 5
       && String.sub msg 0 5 = "outer"))

let test_nested_exhaustion_counters () =
  let metrics = Devil_runtime.Metrics.create () in
  Policy.observe ~metrics ();
  Fun.protect ~finally:Policy.unobserve @@ fun () ->
  let inj =
    Fault.wrap
      ~plans:
        [
          Fault.plan ~label:"t" ~first:0 ~last:0
            (Fault.Transient { probability = 1.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  (try
     Policy.guarded ~label:"outer" (fun () ->
         Policy.with_retries ~attempts:4 ~label:"outer" (fun () ->
             Policy.with_retries ~attempts:2 ~label:"inner" (fun () ->
                 ignore (rd bus ~addr:0))))
   with Policy.Driver_error _ -> ());
  Alcotest.(check int) "exactly one exhaustion — the inner one" 1
    (Devil_runtime.Metrics.count metrics "retry.exhausted");
  Alcotest.(check int) "one retry attempt before exhaustion" 1
    (Devil_runtime.Metrics.count metrics "retry.attempts")

let test_nested_recovery_under_scheduled_fault () =
  let inj =
    Fault.scheduled
      ~injections:
        [
          Fault.injection ~op:Fault.Read ~at:0 ~first:0 ~last:0
            (Fault.Transient { probability = 0.0 });
        ]
      (Bus.memory ())
  in
  let bus = Fault.bus inj in
  (* The gfx/ide driver shape: guarded retries around the access. *)
  let v =
    Policy.guarded ~label:"drv" (fun () ->
        Policy.with_retries ~label:"drv" (fun () -> rd bus ~addr:0))
  in
  Alcotest.(check int) "second attempt reads through" 0 v;
  Alcotest.(check int) "the scheduled fault fired once" 1
    (Fault.scheduled_hits inj)

(* {1 End to end: the IDE sector read path recovers} *)

let test_ide_read_recovers_transient_burst () =
  let plans =
    [
      Fault.plan ~label:"transient" ~budget:2 ~first:Machine.ide_base
        ~last:(Machine.ide_base + 7)
        (Fault.Transient { probability = 1.0 });
    ]
  in
  let m = Machine.create ~faults:plans ~fault_seed:7 () in
  let expected = Bytes.init 512 (fun i -> Char.chr (i land 0xff)) in
  Hwsim.Ide_disk.write_sector m.disk ~lba:5 expected;
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let got =
    Drivers.Ide.Devil_driver.read_sectors d ~lba:5 ~count:1 ~mult:1
      ~path:`Loop ~width:`W16
  in
  Alcotest.(check string) "sector intact after recovery"
    (Bytes.to_string expected) (Bytes.to_string got);
  let inj = Option.get m.injector in
  Alcotest.(check int) "the burst actually fired" 2 (Fault.injection_count inj)

(* {1 Campaign smoke} *)

let test_campaign_transient_never_silent () =
  let report = Campaign.run ~seeds:[ 1 ] () in
  Alcotest.(check int) "full matrix, one seed"
    (List.length Campaign.driver_workloads
    * List.length Campaign.fault_classes)
    (List.length report.Campaign.trials);
  List.iter
    (fun w ->
      Alcotest.(check int)
        (w ^ ": transient plans never corrupt silently")
        0
        (Campaign.count report ~driver:w ~fault:"transient" Campaign.Silent))
    Campaign.driver_workloads;
  Alcotest.(check int) "ide-read recovers from the transient burst" 1
    (Campaign.count report ~driver:"ide-read" ~fault:"transient"
       Campaign.Recovered)

let test_campaign_deterministic () =
  let a = Campaign.run ~seeds:[ 2 ] () in
  let b = Campaign.run ~seeds:[ 2 ] () in
  Alcotest.(check bool) "same seed, same report" true (a = b)

let () =
  Alcotest.run "fault"
    [
      ( "classes",
        [
          case "stuck bits" test_stuck_bits;
          case "flip bits" test_flip_bits;
          case "dropped write" test_drop_write;
          case "duplicated write" test_duplicate_write;
          case "transient" test_transient;
        ] );
      ( "scheduled",
        [
          case "exact ordinal" test_scheduled_exact_ordinal;
          case "window and direction" test_scheduled_window_and_direction;
          case "miss reported" test_scheduled_miss_reported;
          case "block element precision" test_scheduled_block_element;
          case "transient aborts the burst" test_scheduled_transient_aborts_burst;
        ] );
      ( "trace",
        [
          case "events and counters" test_trace_and_reset;
          case "reset restores budgets" test_reset_restores_budget;
          case "reset rewinds the PRNG" test_reset_rewinds_prng;
          case "snapshot and restore" test_snapshot_restore;
          case "scheduled snapshot/restore with a pending ordinal"
            test_scheduled_snapshot_restore_pending;
          case "restore validates shape" test_restore_validates_shape;
        ] );
      ( "policy",
        [
          case "retries absorb a burst" test_with_retries_recovers;
          case "retries exhaust to Degraded" test_with_retries_exhausts;
        ] );
      ( "nested",
        [
          case "bounds add, not multiply" test_nested_retries_compose_not_multiply;
          case "inner label wins" test_nested_guarded_keeps_inner_label;
          case "one exhaustion counter" test_nested_exhaustion_counters;
          case "guarded retries recover" test_nested_recovery_under_scheduled_fault;
        ] );
      ( "end-to-end",
        [ case "IDE sector read" test_ide_read_recovers_transient_burst ] );
      ( "campaign",
        [
          case "transients never silent" test_campaign_transient_never_silent;
          case "deterministic" test_campaign_deterministic;
        ] );
    ]
