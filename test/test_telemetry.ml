(* The mergeable-telemetry suite (DESIGN.md §16).

   Four angles:

   - The sampler: tick-counter time, per-metric series rings with
     bounded capacity and loud eviction accounting, counter deltas,
     and windowed histogram percentiles that answer a different
     question than the lifetime ones.
   - Determinism: identical tick streams produce byte-identical JSONL
     series dumps, and the dump round-trips through the parser.
   - The merge laws, as QCheck properties: {!Metrics.merge} and
     {!Profile.merge} are associative and commutative with the fresh
     registry as identity, and merging per-shard registries fed split
     streams equals one registry fed the concatenated stream — byte
     for byte, through the JSON and OpenMetrics exporters. The same
     split-equals-concatenated law holds for machine-generated
     registries on both runtime engines.
   - The disabled path: {!Machine.telemetry_tick} on an
     uninstrumented machine is allocation-free. *)

module Value = Devil_ir.Value
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Profile = Devil_runtime.Profile
module Health = Devil_runtime.Health
module Telemetry = Devil_runtime.Telemetry
module Trace_export = Devil_runtime.Trace_export
module Policy = Devil_runtime.Policy
module Machine = Drivers.Machine

let case name f = Alcotest.test_case name `Quick f

let qcount d =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> d)
  | None -> d

(* {1 The sampler} *)

let test_counter_series () =
  let m = Metrics.create () in
  let tel = Telemetry.create ~capacity:8 ~hz:2.0 m in
  Alcotest.(check int) "no ticks yet" 0 (Telemetry.ticks tel);
  for t = 1 to 4 do
    Metrics.incr m ~by:t "work.done";
    Telemetry.tick tel
  done;
  Alcotest.(check int) "four ticks" 4 (Telemetry.ticks tel);
  Alcotest.(check (list string))
    "counter names" [ "work.done" ]
    (Telemetry.counter_names tel);
  let pts = Telemetry.counter_series tel "work.done" in
  Alcotest.(check int) "four points" 4 (List.length pts);
  List.iteri
    (fun i (p : Telemetry.counter_point) ->
      let t = i + 1 in
      Alcotest.(check int) (Printf.sprintf "tick %d at" t) t p.Telemetry.at;
      Alcotest.(check int)
        (Printf.sprintf "tick %d delta" t)
        t p.Telemetry.delta;
      Alcotest.(check int)
        (Printf.sprintf "tick %d total" t)
        (t * (t + 1) / 2)
        p.Telemetry.total)
    pts;
  (* Rates scale deltas by the tick frequency at display time. *)
  Alcotest.(check (option (float 1e-9)))
    "last rate = last delta * hz" (Some 8.0)
    (Telemetry.last_rate tel "work.done");
  Alcotest.(check (option (float 1e-9)))
    "mean rate = total/ticks * hz" (Some 5.0)
    (Telemetry.mean_rate tel "work.done");
  Alcotest.(check int) "no evictions" 0 (Telemetry.evictions tel)

let test_series_ring_bound () =
  let m = Metrics.create () in
  let tel = Telemetry.create ~capacity:3 m in
  for _ = 1 to 10 do
    Metrics.incr m "c";
    Telemetry.tick tel
  done;
  let pts = Telemetry.counter_series tel "c" in
  Alcotest.(check int) "ring keeps capacity points" 3 (List.length pts);
  Alcotest.(check (list int))
    "latest ticks retained" [ 8; 9; 10 ]
    (List.map (fun (p : Telemetry.counter_point) -> p.Telemetry.at) pts);
  Alcotest.(check int) "evictions counted" 7 (Telemetry.evictions tel)

let test_windowed_vs_lifetime_percentiles () =
  let m = Metrics.create () in
  let tel = Telemetry.create m in
  (* Window 1: a hundred fast samples. Window 2: a hundred slow ones.
     The lifetime p50 straddles both populations; the window-2 p50
     sees only the slow ones. *)
  for _ = 1 to 100 do
    Metrics.observe m "lat" 1
  done;
  Telemetry.tick tel;
  for _ = 1 to 100 do
    Metrics.observe m "lat" 1000
  done;
  Telemetry.tick tel;
  let lifetime_p50 =
    match Metrics.percentile m "lat" 50.0 with
    | Some v -> v
    | None -> Alcotest.fail "lifetime histogram missing"
  in
  let w2 =
    match List.rev (Telemetry.hist_series tel "lat") with
    | last :: _ -> last
    | [] -> Alcotest.fail "no histogram window sampled"
  in
  Alcotest.(check int) "window 2 sample count" 100 w2.Telemetry.h_count;
  Alcotest.(check int) "window 2 sum" 100_000 w2.Telemetry.h_sum;
  Alcotest.(check bool)
    (Printf.sprintf "windowed p50 (%d) > lifetime p50 (%d)" w2.Telemetry.h_p50
       lifetime_p50)
    true
    (w2.Telemetry.h_p50 > lifetime_p50);
  Alcotest.(check bool)
    "windowed percentiles are ordered" true
    (w2.Telemetry.h_p50 <= w2.Telemetry.h_p95
    && w2.Telemetry.h_p95 <= w2.Telemetry.h_p99)

let test_parse_env_value () =
  let ok = Alcotest.(check (result (option int) string)) in
  ok "off disables" (Ok None) (Telemetry.parse_env_value "0");
  ok "off word" (Ok None) (Telemetry.parse_env_value "off");
  ok "on enables default"
    (Ok (Some Telemetry.default_capacity))
    (Telemetry.parse_env_value "1");
  ok "explicit capacity" (Ok (Some 256)) (Telemetry.parse_env_value "256");
  Alcotest.(check bool)
    "malformed is an error" true
    (match Telemetry.parse_env_value "bogus" with
    | Error _ -> true
    | Ok _ -> false)

(* {1 Determinism: replayed ticks give byte-identical series} *)

let feed_fixture (m : Metrics.t) (tel : Telemetry.t) =
  for t = 1 to 6 do
    Metrics.incr m ~by:(3 + (t mod 2)) "sched.queue.completions";
    Metrics.incr m "io.ops";
    Metrics.observe m "sched.queue.wait_ticks" (1 + ((t * 7) mod 40));
    Metrics.observe m "sched.queue.wait_ticks" (1 + ((t * 13) mod 90));
    let health = Health.evaluate ~metrics:m () in
    Telemetry.tick ~health tel
  done

let test_series_dump_deterministic () =
  let dump () =
    let m = Metrics.create () in
    let tel = Telemetry.create ~capacity:16 m in
    feed_fixture m tel;
    Trace_export.series_to_jsonl tel
  in
  let a = dump () and b = dump () in
  Alcotest.(check string) "two identical runs dump identical bytes" a b

let test_series_roundtrip () =
  let m = Metrics.create () in
  let tel = Telemetry.create ~capacity:16 m in
  feed_fixture m tel;
  let dump = Trace_export.series_to_jsonl tel in
  match Trace_export.series_of_jsonl dump with
  | Error e -> Alcotest.fail ("series dump did not parse back: " ^ e)
  | Ok sf ->
      Alcotest.(check int) "ticks round-trip" 6 sf.Trace_export.sf_ticks;
      Alcotest.(check int) "capacity round-trip" 16 sf.Trace_export.sf_capacity;
      Alcotest.(check int)
        "evictions round-trip"
        (Telemetry.evictions tel)
        sf.Trace_export.sf_evictions;
      let counters, hists, healths =
        List.fold_left
          (fun (c, h, l) -> function
            | Trace_export.S_counter _ -> (c + 1, h, l)
            | Trace_export.S_hist _ -> (c, h + 1, l)
            | Trace_export.S_health _ -> (c, h, l + 1))
          (0, 0, 0) sf.Trace_export.sf_points
      in
      Alcotest.(check int) "counter points" (2 * 6) counters;
      Alcotest.(check int) "hist points" 6 hists;
      Alcotest.(check int) "health points" 6 healths

let test_openmetrics_exposition () =
  let m = Metrics.create () in
  let tel = Telemetry.create m in
  Metrics.incr m ~by:42 "sched.queue.completions";
  Metrics.observe m "sched.queue.wait_ticks" 5;
  Metrics.observe m "sched.queue.wait_ticks" 900;
  Telemetry.tick tel;
  let health = Health.evaluate ~metrics:m () in
  let out = Trace_export.to_openmetrics ~health ~telemetry:tel m in
  let has needle =
    Alcotest.(check bool) ("exposition mentions " ^ needle) true
      (let nl = String.length needle and ol = String.length out in
       let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
       go 0)
  in
  has "# TYPE devil_sched_queue_completions counter";
  has "devil_sched_queue_completions_total 42";
  (* The dropped-events counter is always exported, even at zero, so
     dashboards can alert on it without a state change. *)
  has "devil_trace_dropped_events_total 0";
  has "# TYPE devil_sched_queue_wait_ticks histogram";
  has "devil_sched_queue_wait_ticks_bucket{le=\"+Inf\"} 2";
  has "devil_sched_queue_wait_ticks_count 2";
  has "devil_telemetry_ticks 1";
  has "devil_telemetry_series_evictions_total 0";
  has "devil_health 0";
  Alcotest.(check bool)
    "document ends with # EOF" true
    (let tail = "# EOF\n" in
     String.length out >= String.length tail
     && String.sub out (String.length out - String.length tail)
          (String.length tail)
        = tail)

(* {1 Metrics merge laws} *)

(* A shard-feedable event stream: each op is self-contained, so any
   split of the stream across registries is meaningful. *)
type mop = C of string * int | H of string * int

let mop_names = [| "a"; "b"; "io.lat"; "sched.queue.completions" |]

let mop_gen =
  QCheck.Gen.(
    let name = map (fun i -> mop_names.(i)) (int_bound 3) in
    frequency
      [
        (1, map2 (fun n by -> C (n, by)) name (int_range 1 50));
        (1, map2 (fun n v -> H (n, v)) name (int_bound 5000));
      ])

let mop_print = function
  | C (n, by) -> Printf.sprintf "C(%s,%d)" n by
  | H (n, v) -> Printf.sprintf "H(%s,%d)" n v

let mops_arb = QCheck.make ~print:QCheck.Print.(list mop_print) QCheck.Gen.(list_size (int_bound 60) mop_gen)

let apply_mops ops =
  let m = Metrics.create () in
  List.iter
    (function C (n, by) -> Metrics.incr m ~by n | H (n, v) -> Metrics.observe m n v)
    ops;
  m

let metrics_fingerprint m =
  (* Two exporters, one truth: the JSON dump and the OpenMetrics
     exposition must both agree byte for byte. *)
  Metrics.to_json m ^ "\n" ^ Trace_export.to_openmetrics m

let prop_metrics_merge_commutative =
  QCheck.Test.make ~count:(qcount 100) ~name:"Metrics.merge is commutative"
    (QCheck.pair mops_arb mops_arb)
    (fun (xs, ys) ->
      let a = apply_mops xs and b = apply_mops ys in
      metrics_fingerprint (Metrics.merge a b)
      = metrics_fingerprint (Metrics.merge b a))

let prop_metrics_merge_associative =
  QCheck.Test.make ~count:(qcount 100) ~name:"Metrics.merge is associative"
    (QCheck.triple mops_arb mops_arb mops_arb)
    (fun (xs, ys, zs) ->
      let a = apply_mops xs and b = apply_mops ys and c = apply_mops zs in
      metrics_fingerprint (Metrics.merge (Metrics.merge a b) c)
      = metrics_fingerprint (Metrics.merge a (Metrics.merge b c)))

let prop_metrics_merge_identity =
  QCheck.Test.make ~count:(qcount 100)
    ~name:"fresh registry is Metrics.merge's identity" mops_arb (fun xs ->
      let a = apply_mops xs in
      let fp = metrics_fingerprint a in
      metrics_fingerprint (Metrics.merge a (Metrics.create ())) = fp
      && metrics_fingerprint (Metrics.merge (Metrics.create ()) a) = fp)

let prop_metrics_split_equals_concatenated =
  QCheck.Test.make ~count:(qcount 100)
    ~name:"merged split streams = one registry fed the concatenation"
    (QCheck.pair mops_arb mops_arb)
    (fun (xs, ys) ->
      let merged = Metrics.merge (apply_mops xs) (apply_mops ys) in
      let whole = apply_mops (xs @ ys) in
      metrics_fingerprint merged = metrics_fingerprint whole)

(* {1 Profile merge laws} *)

(* Deterministic span streams under a substituted clock: each op is a
   closed span (or a leaf), so streams shard cleanly. *)
type pop = Leaf of string * int | Span of string * int * pop list

let pop_sites = [| "bus.read"; "ide.cmd"; "net.tx" |]

(* Leaves appear only at top level: [Profile.leaf] under an open span
   adds self time the enclosing span's clock never covered, which
   breaks the attributed = total identity in the {e input} — the law
   under test is that merge preserves it, so the streams must satisfy
   it to begin with. *)
let pop_gen =
  QCheck.Gen.(
    let site = map (fun i -> pop_sites.(i)) (int_bound 2) in
    let span_tree =
      sized_size (int_bound 3)
        (fix (fun self n ->
             map3
               (fun s d kids -> Span (s, d, kids))
               site (int_range 1 200)
               (if n = 0 then return []
                else list_size (int_bound 2) (self (n - 1)))))
    in
    frequency
      [
        (1, map2 (fun s ns -> Leaf (s, ns)) site (int_range 1 500));
        (1, span_tree);
      ])

let rec pop_print = function
  | Leaf (s, ns) -> Printf.sprintf "Leaf(%s,%d)" s ns
  | Span (s, d, kids) ->
      Printf.sprintf "Span(%s,%d,[%s])" s d
        (String.concat ";" (List.map pop_print kids))

let pops_arb =
  QCheck.make
    ~print:QCheck.Print.(list pop_print)
    QCheck.Gen.(list_size (int_bound 12) pop_gen)

let apply_pops ops =
  let p = Profile.create () in
  let clk = ref 0 in
  Profile.set_clock p (fun () -> !clk);
  let rec run = function
    | Leaf (s, ns) -> Profile.leaf p s ns
    | Span (s, d, kids) ->
        let sp = Profile.enter p s in
        clk := !clk + d;
        List.iter run kids;
        Profile.exit p sp
  in
  List.iter run ops;
  p

let profile_fingerprint p = Trace_export.profile_to_folded p

let prop_profile_merge_commutative =
  QCheck.Test.make ~count:(qcount 60) ~name:"Profile.merge is commutative"
    (QCheck.pair pops_arb pops_arb)
    (fun (xs, ys) ->
      let a = apply_pops xs and b = apply_pops ys in
      profile_fingerprint (Profile.merge a b)
      = profile_fingerprint (Profile.merge b a))

let prop_profile_merge_associative =
  QCheck.Test.make ~count:(qcount 60) ~name:"Profile.merge is associative"
    (QCheck.triple pops_arb pops_arb pops_arb)
    (fun (xs, ys, zs) ->
      let a = apply_pops xs and b = apply_pops ys and c = apply_pops zs in
      profile_fingerprint (Profile.merge (Profile.merge a b) c)
      = profile_fingerprint (Profile.merge a (Profile.merge b c)))

let prop_profile_merge_identity_and_attribution =
  QCheck.Test.make ~count:(qcount 60)
    ~name:"fresh profiler is Profile.merge's identity; attribution holds"
    (QCheck.pair pops_arb pops_arb)
    (fun (xs, ys) ->
      let a = apply_pops xs and b = apply_pops ys in
      let merged = Profile.merge a b in
      (* The inputs keep every nanosecond attributed to some call
         path; the fold must preserve that identity and the sums. *)
      Profile.attributed_ns a = Profile.total_ns a
      && Profile.attributed_ns merged = Profile.total_ns merged
      && Profile.total_ns merged = Profile.total_ns a + Profile.total_ns b
      && profile_fingerprint (Profile.merge a (Profile.create ()))
         = profile_fingerprint a)

let prop_profile_split_equals_concatenated =
  QCheck.Test.make ~count:(qcount 60)
    ~name:"merged split span streams = one profiler fed the concatenation"
    (QCheck.pair pops_arb pops_arb)
    (fun (xs, ys) ->
      let merged = Profile.merge (apply_pops xs) (apply_pops ys) in
      let whole = apply_pops (xs @ ys) in
      profile_fingerprint merged = profile_fingerprint whole)

(* {1 Trace ring merge} *)

let test_trace_merge_seq_order () =
  let mk kinds =
    let t = Trace.create ~capacity:16 () in
    List.iter (Trace.emit t) kinds;
    t
  in
  let a =
    mk
      [
        Trace.Cache_hit { dev = "uart"; reg = "LCR" };
        Trace.Cache_miss { dev = "uart"; reg = "LSR" };
        Trace.Cache_hit { dev = "ide"; reg = "STATUS" };
      ]
  in
  let b =
    mk
      [
        Trace.Cache_invalidated { dev = "kbd" };
        Trace.Cache_hit { dev = "kbd"; reg = "DATA" };
      ]
  in
  let merged = Trace.merge_events (Trace.events a) (Trace.events b) in
  Alcotest.(check int) "all events retained" 5 (List.length merged);
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) merged in
  Alcotest.(check bool)
    "seq-ordered (non-decreasing)" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 4) seqs)
       (List.tl seqs));
  (* Equal seqs keep left-stream events first: a's seq-0 event leads. *)
  (match merged with
  | { Trace.kind = Trace.Cache_hit { dev = "uart"; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "stable merge must keep the left stream first");
  let ring = Trace.merge ~capacity:4 a b in
  Alcotest.(check int) "bounded merged ring length" 4 (Trace.length ring);
  Alcotest.(check int) "merged ring counts the eviction" 1
    (Trace.dropped ring)

(* {1 Both engines: machine-generated registries fold the same way} *)

let machine_ops : (Machine.t -> unit) list =
  [
    (fun m -> ignore (Machine.Instance.get m.Machine.uart_dev "parity_mode"));
    (fun m ->
      Machine.Instance.set m.Machine.uart_dev "parity_mode" (Value.Int 5));
    (fun m -> Machine.Instance.get_struct m.Machine.uart_dev "line_status");
    (fun m ->
      Machine.Instance.write_block m.Machine.uart_dev "tx_data"
        (Array.make 16 0x55);
      ignore (Hwsim.Uart16550.take_transmitted m.Machine.uart));
    (fun m -> ignore (Machine.Instance.get m.Machine.uart_dev "parity_mode"));
  ]

let run_machine_workload ~interpret ?metrics ops =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let m = Machine.create ~metrics ~interpret () in
  Fun.protect ~finally:Policy.unobserve (fun () ->
      List.iter (fun op -> op m) ops);
  metrics

let test_split_equals_concatenated_both_engines () =
  (* Two shard machines, each with its own registry, merged — versus
     the same two machines feeding one shared registry (the
     concatenated metric event stream). The machines are fresh in both
     arms so the hardware-side state (caches, FIFOs) emits identical
     streams; only the registry topology differs. *)
  List.iter
    (fun interpret ->
      let shard_a = run_machine_workload ~interpret machine_ops in
      let shard_b = run_machine_workload ~interpret (List.rev machine_ops) in
      let merged = Metrics.merge shard_a shard_b in
      let shared = Metrics.create () in
      ignore (run_machine_workload ~interpret ~metrics:shared machine_ops);
      ignore
        (run_machine_workload ~interpret ~metrics:shared
           (List.rev machine_ops));
      Alcotest.(check string)
        (Printf.sprintf
           "engine interpret=%b: merged shards = concatenated stream"
           interpret)
        (metrics_fingerprint shared)
        (metrics_fingerprint merged))
    [ false; true ]

let test_engines_agree_on_fold () =
  (* The two engines count the same workload the same way, so their
     folded registries agree too — the cross-engine half of the
     acceptance law. *)
  let fp interpret =
    let a = run_machine_workload ~interpret machine_ops in
    let b = run_machine_workload ~interpret machine_ops in
    metrics_fingerprint (Metrics.merge a b)
  in
  Alcotest.(check string) "compiled and interpreted folds agree" (fp false)
    (fp true)

(* {1 Disabled path: telemetry_tick on a bare machine is free} *)

let test_disabled_telemetry_tick_allocation_free () =
  (* No metrics registry, hence no telemetry handle: the per-tick call
     a workload makes unconditionally must cost nothing. *)
  let m = Machine.create () in
  Fun.protect ~finally:Policy.unobserve (fun () ->
      Machine.telemetry_tick m;
      let a0 = Gc.allocated_bytes () in
      for _ = 1 to 10_000 do
        Machine.telemetry_tick m
      done;
      let a1 = Gc.allocated_bytes () in
      (* allocated_bytes itself boxes its float results; allow that. *)
      Alcotest.(check bool)
        (Printf.sprintf "no per-call allocation (%.0f bytes for 10k calls)"
           (a1 -. a0))
        true
        (a1 -. a0 < 512.0))

let () =
  Alcotest.run "telemetry"
    [
      ( "sampler",
        [
          case "counter series deltas, totals and rates" test_counter_series;
          case "series ring bound and eviction count" test_series_ring_bound;
          case "windowed percentiles differ from lifetime"
            test_windowed_vs_lifetime_percentiles;
          case "DEVIL_TELEMETRY value parser" test_parse_env_value;
        ] );
      ( "determinism",
        [
          case "identical runs dump byte-identical series"
            test_series_dump_deterministic;
          case "series JSONL round-trips" test_series_roundtrip;
          case "OpenMetrics exposition shape" test_openmetrics_exposition;
        ] );
      ( "merge-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_metrics_merge_commutative;
            prop_metrics_merge_associative;
            prop_metrics_merge_identity;
            prop_metrics_split_equals_concatenated;
            prop_profile_merge_commutative;
            prop_profile_merge_associative;
            prop_profile_merge_identity_and_attribution;
            prop_profile_split_equals_concatenated;
          ] );
      ( "trace-merge",
        [ case "seq-ordered stable ring merge" test_trace_merge_seq_order ] );
      ( "engines",
        [
          case "merged shards = concatenated stream, both engines"
            test_split_equals_concatenated_both_engines;
          case "compiled and interpreted folds agree"
            test_engines_agree_on_fold;
        ] );
      ( "disabled-path",
        [
          case "telemetry_tick without a handle allocates nothing"
            test_disabled_telemetry_tick_allocation_free;
        ] );
    ]
