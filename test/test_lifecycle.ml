(* The request-lifecycle/observability layer (DESIGN.md §15): rid
   threading from Sched through the trace, online and offline arc
   reconstruction with per-stage accounting, lost-vs-spurious late
   completion classification, the trace drop hook, the Chrome flow
   events linking request arcs, and the Health watchdog verdicts. *)

module Sched = Devil_runtime.Sched
module Policy = Devil_runtime.Policy
module Trace = Devil_runtime.Trace
module Trace_export = Devil_runtime.Trace_export
module Metrics = Devil_runtime.Metrics
module Lifecycle = Devil_runtime.Lifecycle
module Health = Devil_runtime.Health

let case name f = Alcotest.test_case name `Quick f

(* A scheduler over a controller that never interrupts, with the full
   observability stack attached; the lifecycle clock is the trace's
   event count, so stage durations are deterministic event ticks. *)
let quiet_observed () =
  let trace = Trace.create ~capacity:512 () in
  let metrics = Metrics.create () in
  let tick = ref 0 in
  let lc = Lifecycle.attach ~clock:(fun () -> !tick) ~metrics trace in
  Trace.subscribe trace (fun _ -> incr tick);
  let t =
    Sched.create ~trace ~metrics
      {
        Sched.ctl_raise = (fun ~line:_ -> ());
        ctl_ack = (fun () -> None);
        ctl_eoi = (fun ~line:_ -> ());
      }
  in
  (t, trace, metrics, lc)

(* A controller with one pending line, driving real deliveries — the
   toy from the scheduler suite, here with the lifecycle stack on. *)
let interrupting_observed () =
  let trace = Trace.create ~capacity:512 () in
  let metrics = Metrics.create () in
  let tick = ref 0 in
  let lc = Lifecycle.attach ~clock:(fun () -> !tick) ~metrics trace in
  Trace.subscribe trace (fun _ -> incr tick);
  let tref = ref None in
  let note high =
    match !tref with Some t -> Sched.note_int t high | None -> ()
  in
  let pending = ref None in
  let ctl =
    {
      Sched.ctl_raise =
        (fun ~line ->
          pending := Some line;
          note true);
      ctl_ack =
        (fun () ->
          match !pending with
          | None ->
              note false;
              None
          | Some line ->
              pending := None;
              note false;
              Some line);
      ctl_eoi = (fun ~line:_ -> ());
    }
  in
  let t = Sched.create ~trace ~metrics ctl in
  tref := Some t;
  (t, trace, metrics, lc)

(* {1 Online reconstruction: the full arc through real deliveries} *)

let test_full_arc_online () =
  let t, _trace, metrics, lc = interrupting_observed () in
  let dev_high = ref false in
  Sched.add_source t ~line:2 ~dev:"d" (fun () -> !dev_high);
  Sched.set_handler t ~line:2 ~dev:"d" (fun () ->
      dev_high := false;
      Sched.complete t ~dev:"d" (Ok ()));
  (* The device takes 2 ticks to finish: the line drops between
     requests, so each request gets its own Irq_raised edge. *)
  let submit i =
    Sched.submit t ~dev:"d"
      ~label:(Printf.sprintf "op%d" i)
      ~start:(fun () ->
        ignore (Sched.after t ~ticks:2 (fun () -> dev_high := true)))
      ()
  in
  let r1 = submit 1 in
  let r2 = submit 2 in
  Sched.await t r1;
  Sched.await t r2;
  Alcotest.(check int) "rids mint from 1" 1 (Sched.request_id r1);
  Alcotest.(check int) "rids increase" 2 (Sched.request_id r2);
  Alcotest.(check int) "both submitted" 2 (Lifecycle.submitted lc);
  Alcotest.(check int) "both completed" 2 (Lifecycle.completed lc);
  Alcotest.(check int) "no orphans" 0 (List.length (Lifecycle.orphans lc));
  (match Lifecycle.requests lc with
  | [ a; b ] ->
      Alcotest.(check int) "submit order" 1 a.Lifecycle.rid;
      Alcotest.(check int) "submit order" 2 b.Lifecycle.rid;
      Alcotest.(check bool) "first ok" true a.Lifecycle.ok;
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "req %d complete" r.Lifecycle.rid)
            true (Lifecycle.complete r);
          List.iter
            (fun st ->
              match Lifecycle.stage_ns r st with
              | Some d when d >= 0 -> ()
              | Some d ->
                  Alcotest.failf "req %d %s: negative duration %d"
                    r.Lifecycle.rid (Lifecycle.stage_label st) d
              | None ->
                  Alcotest.failf "req %d: stage %s unobserved on a full arc"
                    r.Lifecycle.rid (Lifecycle.stage_label st))
            Lifecycle.stages)
        [ a; b ];
      (* The second request waited behind the first: its queue-wait
         spans the first's whole service. *)
      (match Lifecycle.stage_ns b Lifecycle.Queue_wait with
      | Some d when d > 0 -> ()
      | _ -> Alcotest.fail "queued request shows no queue wait")
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs));
  (* Stage histograms fed under the metric vocabulary. *)
  List.iter
    (fun st ->
      let name =
        Printf.sprintf "lifecycle.d.%s.ns" (Lifecycle.stage_label st)
      in
      match Metrics.histogram metrics name with
      | Some h -> Alcotest.(check int) (name ^ " fed twice") 2 h.Metrics.count
      | None -> Alcotest.failf "missing histogram %s" name)
    Lifecycle.stages;
  Alcotest.(check int) "lifecycle.submitted counter" 2
    (Metrics.count metrics "lifecycle.submitted");
  Alcotest.(check int) "lifecycle.completed counter" 2
    (Metrics.count metrics "lifecycle.completed");
  Alcotest.(check (option Alcotest.int)) "find by rid" (Some 2)
    (Option.map (fun r -> r.Lifecycle.rid) (Lifecycle.find lc 2))

let test_rid_reaches_request_thunks () =
  let t, _, _, _ = quiet_observed () in
  let in_start = ref 0 and in_done = ref 0 in
  let rq =
    Sched.submit t ~dev:"d" ~label:"op"
      ~start:(fun () -> in_start := Policy.current_request ())
      ~on_done:(fun _ -> in_done := Policy.current_request ())
      ()
  in
  Sched.complete t ~dev:"d" (Ok ());
  Alcotest.(check int) "start runs under its rid" (Sched.request_id rq)
    !in_start;
  Alcotest.(check int) "on_done runs under its rid" (Sched.request_id rq)
    !in_done;
  Alcotest.(check int) "hook reset after the request" 0
    (Policy.current_request ())

let test_orphan_until_completion () =
  let t, _, _, lc = quiet_observed () in
  let _rq =
    Sched.submit t ~dev:"d" ~label:"stuck" ~timeout:5 ~start:(fun () -> ()) ()
  in
  Alcotest.(check int) "in flight counts as orphan" 1
    (List.length (Lifecycle.orphans lc));
  for _ = 1 to 6 do
    Sched.tick t
  done;
  Alcotest.(check int) "timeout resolves the orphan" 0
    (List.length (Lifecycle.orphans lc));
  match Lifecycle.requests lc with
  | [ r ] ->
      Alcotest.(check bool) "completed (failed)" true (Lifecycle.complete r);
      Alcotest.(check bool) "not ok" false r.Lifecycle.ok
  | _ -> Alcotest.fail "expected exactly one record"

(* {1 Late completions: lost interrupt vs spurious (the regression
   pair for the Queue_late classification)} *)

let late_completion_scenario () =
  let t, trace, metrics, lc = quiet_observed () in
  let rq =
    Sched.submit t ~dev:"d" ~label:"op" ~timeout:3 ~start:(fun () -> ()) ()
  in
  for _ = 1 to 4 do
    Sched.tick t
  done;
  (* The interrupt finally arrives, after its request timed out. *)
  Sched.complete t ~dev:"d" (Ok ());
  (* And one more completion with no timed-out predecessor left. *)
  Sched.complete t ~dev:"d" (Ok ());
  (t, trace, metrics, lc, rq)

let test_lost_vs_spurious () =
  let _, trace, metrics, lc, rq = late_completion_scenario () in
  Alcotest.(check int) "one lost interrupt" 1 (Lifecycle.lost_interrupts lc);
  Alcotest.(check int) "one spurious completion" 1
    (Lifecycle.spurious_completions lc);
  Alcotest.(check int) "both unhandled at the sched layer" 2
    (Metrics.count metrics "sched.irqs.unhandled");
  (match Lifecycle.find lc (Sched.request_id rq) with
  | Some r ->
      Alcotest.(check bool) "record tagged late_completion" true
        r.Lifecycle.late_completion
  | None -> Alcotest.fail "timed-out request has no record");
  let lates =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Queue_late { rid; _ } -> Some rid
        | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check (list int))
    "first Queue_late names the timed-out rid, second is spurious"
    [ Sched.request_id rq; 0 ]
    lates

(* {1 The health watchdog} *)

let test_health_clean_run_ok () =
  let t, trace, metrics, lc = interrupting_observed () in
  let dev_high = ref false in
  Sched.add_source t ~line:2 ~dev:"d" (fun () -> !dev_high);
  Sched.set_handler t ~line:2 ~dev:"d" (fun () ->
      dev_high := false;
      Sched.complete t ~dev:"d" (Ok ()));
  let rq =
    Sched.submit t ~dev:"d" ~label:"op" ~start:(fun () -> dev_high := true) ()
  in
  Sched.await t rq;
  let report = Health.evaluate ~lifecycle:lc ~trace ~metrics () in
  Alcotest.(check bool) "clean run is ok" true (Health.is_ok report);
  Alcotest.(check string) "summary" "ok" (Health.summary report);
  Alcotest.(check bool) "counters include the informational submits" true
    (List.mem_assoc "sched.submits" report.Health.counters)

let test_health_timeout_stalls () =
  let _, trace, metrics, lc, _ = late_completion_scenario () in
  let report = Health.evaluate ~lifecycle:lc ~trace ~metrics () in
  (match report.Health.verdict with
  | Health.Stalled -> ()
  | v -> Alcotest.failf "expected stalled, got %s" (Health.verdict_label v));
  let codes = List.map (fun r -> r.Health.code) report.Health.reasons in
  Alcotest.(check bool) "request_timeouts named" true
    (List.mem "request_timeouts" codes);
  Alcotest.(check bool) "lost interrupt also named" true
    (List.mem "lost_interrupts" codes);
  (* The worst reason leads. *)
  match report.Health.reasons with
  | { Health.code = "request_timeouts"; count = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "stall reason must sort first"

let test_health_thresholds_and_degraded () =
  let _, trace, metrics, lc, _ = late_completion_scenario () in
  (* Tolerating the timeout leaves the degraded damage visible. *)
  let report =
    Health.evaluate
      ~thresholds:[ ("request_timeouts", 9) ]
      ~lifecycle:lc ~trace ~metrics ()
  in
  (match report.Health.verdict with
  | Health.Degraded -> ()
  | v -> Alcotest.failf "expected degraded, got %s" (Health.verdict_label v));
  let codes = List.map (fun r -> r.Health.code) report.Health.reasons in
  Alcotest.(check bool) "request_timeouts suppressed" false
    (List.mem "request_timeouts" codes);
  Alcotest.(check bool) "lost_interrupts fires" true
    (List.mem "lost_interrupts" codes);
  Alcotest.(check bool) "spurious_completions fires" true
    (List.mem "spurious_completions" codes)

let test_health_orphan_stalls () =
  let t, trace, metrics, lc = quiet_observed () in
  let _ = Sched.submit t ~dev:"d" ~label:"stuck" ~start:(fun () -> ()) () in
  let report = Health.evaluate ~lifecycle:lc ~trace ~metrics () in
  (match report.Health.verdict with
  | Health.Stalled -> ()
  | v -> Alcotest.failf "expected stalled, got %s" (Health.verdict_label v));
  Alcotest.(check bool) "orphaned_requests named" true
    (List.mem "orphaned_requests"
       (List.map (fun r -> r.Health.code) report.Health.reasons))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let count_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_health_json_shape () =
  let _, trace, metrics, lc, _ = late_completion_scenario () in
  let j = Health.to_json (Health.evaluate ~lifecycle:lc ~trace ~metrics ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in json") true (contains j needle))
    [
      "\"verdict\"";
      "\"stalled\"";
      "\"reasons\"";
      "\"request_timeouts\"";
      "\"counters\"";
    ]

(* {1 Export: JSONL rid round-trip and the Chrome flow arcs} *)

(* Two interleaved request arcs plus rid-less noise — every queue
   kind, both Queue_late classifications, and policy events on a
   request's behalf. *)
let arc_events =
  List.mapi
    (fun i kind -> { Trace.seq = i; kind })
    [
      Trace.Queue_submitted { dev = "d"; label = "a"; depth = 1; rid = 1 };
      Trace.Queue_started { dev = "d"; label = "a"; rid = 1 };
      Trace.Queue_submitted { dev = "d"; label = "b"; depth = 2; rid = 2 };
      Trace.Poll { label = "d: ready"; iters = 3; ok = true; rid = 1 };
      Trace.Irq_raised { line = 2; dev = "d"; rid = 1 };
      Trace.Irq_delivered { line = 2; dev = "d"; rid = 1 };
      Trace.Queue_completed { dev = "d"; label = "a"; depth = 1; ok = true; rid = 1 };
      Trace.Queue_started { dev = "d"; label = "b"; rid = 2 };
      Trace.Retry { label = "d: ready"; attempt = 1; reason = "busy"; rid = 2 };
      Trace.Irq_raised { line = 2; dev = "d"; rid = 2 };
      Trace.Irq_delivered { line = 2; dev = "d"; rid = 2 };
      Trace.Queue_completed { dev = "d"; label = "b"; depth = 0; ok = false; rid = 2 };
      Trace.Queue_late { dev = "d"; rid = 2 };
      Trace.Queue_late { dev = "d"; rid = 0 };
      Trace.Bus_read { addr = 0x1f0; width = 8; value = 0x50 };
    ]

let test_jsonl_rid_round_trip () =
  let jsonl = Trace_export.events_to_jsonl arc_events in
  match Trace_export.events_of_jsonl jsonl with
  | Ok evs ->
      Alcotest.(check int) "same length" (List.length arc_events)
        (List.length evs);
      List.iter2
        (fun (a : Trace.event) (b : Trace.event) ->
          if a <> b then
            Alcotest.failf "event %d did not round-trip: %a vs %a" a.Trace.seq
              Trace.pp_event a Trace.pp_event b)
        arc_events evs
  | Error why -> Alcotest.failf "round trip failed: %s" why

let test_jsonl_missing_rid_is_zero () =
  (* A rid-0 event serializes with no "rid" field — the pre-lifecycle
     format 1 shape — and must parse back to rid 0. *)
  let legacy =
    [ { Trace.seq = 0;
        kind = Trace.Queue_submitted { dev = "d"; label = "x"; depth = 1; rid = 0 } } ]
  in
  let jsonl = Trace_export.events_to_jsonl legacy in
  Alcotest.(check bool) "rid field omitted at 0" false (contains jsonl "rid");
  match Trace_export.events_of_jsonl jsonl with
  | Ok [ { kind = Trace.Queue_submitted { rid = 0; _ }; _ } ] -> ()
  | Ok _ -> Alcotest.fail "legacy line parsed to the wrong event"
  | Error why -> Alcotest.failf "legacy line rejected: %s" why

let test_chrome_flow_arcs () =
  let chrome = Trace_export.to_chrome arc_events in
  (* One flow start and one flow end per request, in-between steps on
     the arcs, and the end bound to its enclosing slice. *)
  Alcotest.(check int) "one s per request" 2 (count_substring chrome "\"ph\":\"s\"");
  Alcotest.(check int) "one f per request" 2 (count_substring chrome "\"ph\":\"f\"");
  Alcotest.(check int) "steps: start/irqs/poll/retry/late" 9
    (count_substring chrome "\"ph\":\"t\"");
  Alcotest.(check int) "flow ends bind to the enclosing slice" 2
    (count_substring chrome "\"bp\":\"e\"");
  (* Every flow event carries the lifecycle category and its rid. *)
  Alcotest.(check int) "flow count = s + t + f" 13
    (count_substring chrome "\"cat\":\"lifecycle\"");
  Alcotest.(check int) "req #1 arc" 6 (count_substring chrome "\"req #1\"");
  Alcotest.(check int) "req #2 arc (one extra step: its late completion)" 7
    (count_substring chrome "\"req #2\"");
  Alcotest.(check bool) "flow ids are the rids" true
    (contains chrome "\"id\":1" && contains chrome "\"id\":2");
  (* The rid-less bus event contributes no flow. *)
  Alcotest.(check int) "late completions render both classifications" 1
    (count_substring chrome "late completion (req #2)")
  |> fun () ->
  Alcotest.(check int) "spurious rendered" 1
    (count_substring chrome "spurious completion")

let test_of_events_offline_ticks () =
  let lc = Lifecycle.of_events arc_events in
  Alcotest.(check int) "two requests" 2 (Lifecycle.submitted lc);
  Alcotest.(check int) "two completions" 2 (Lifecycle.completed lc);
  Alcotest.(check int) "lost interrupt from Queue_late rid 2" 1
    (Lifecycle.lost_interrupts lc);
  Alcotest.(check int) "spurious from Queue_late rid 0" 1
    (Lifecycle.spurious_completions lc);
  match Lifecycle.find lc 1 with
  | None -> Alcotest.fail "request 1 missing"
  | Some r ->
      let check_stage st expect =
        Alcotest.(check (option Alcotest.int))
          (Lifecycle.stage_label st) (Some expect) (Lifecycle.stage_ns r st)
      in
      (* seqs: submitted 0, started 1, raised 4, delivered 5, completed 6 *)
      check_stage Lifecycle.Queue_wait 1;
      check_stage Lifecycle.Service 4;
      check_stage Lifecycle.Irq_delivery 1;
      check_stage Lifecycle.Completion 1;
      check_stage Lifecycle.Total 6;
      Alcotest.(check int) "polls attributed" 1 r.Lifecycle.polls

(* {1 The ring-eviction drop hook} *)

let test_drop_hook_counts_evictions () =
  let trace = Trace.create ~capacity:4 () in
  let drops = ref 0 in
  Trace.set_drop_hook trace (fun () -> incr drops);
  for i = 1 to 7 do
    Trace.emit trace (Trace.Cache_invalidated { dev = Printf.sprintf "d%d" i })
  done;
  Alcotest.(check int) "hook fired per eviction" 3 !drops;
  Alcotest.(check int) "matches the retention stat" 3 (Trace.dropped trace)

let test_machine_wires_drop_counter () =
  let trace = Trace.create ~capacity:4 () in
  let metrics = Devil_runtime.Metrics.create () in
  let _m = Drivers.Machine.create ~trace ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  for i = 1 to 10 do
    Trace.emit trace (Trace.Cache_invalidated { dev = Printf.sprintf "d%d" i })
  done;
  Alcotest.(check int) "evictions surface as trace.dropped_events"
    (Trace.dropped trace)
    (Metrics.count metrics "trace.dropped_events");
  Alcotest.(check bool) "and there were some" true (Trace.dropped trace > 0)

(* {1 The campaign surfaces health, not just verdicts} *)

let test_campaign_surfaces_unhealthy_trials () =
  (* Seed 2's dropped-write schedule loses the DMA completion
     interrupt on the queued IDE workload — the canonical "driver hung
     waiting for an IRQ that never came" failure this layer exists to
     name. *)
  let report = Faultcamp.Campaign.run ~seeds:[ 2 ] () in
  let unhealthy = Faultcamp.Campaign.unhealthy_trials report in
  Alcotest.(check bool) "some trial left the machine unhealthy" true
    (unhealthy <> []);
  List.iter
    (fun (tr : Faultcamp.Campaign.trial) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s/seed%d: non-ok carries named reasons"
           tr.Faultcamp.Campaign.driver tr.Faultcamp.Campaign.fault
           tr.Faultcamp.Campaign.seed)
        true
        (tr.Faultcamp.Campaign.health.Health.reasons <> []))
    unhealthy;
  (* The acceptance flip: a fault that loses an interrupt leaves an
     async trial stalled on its request timeout, by name. *)
  Alcotest.(check bool) "a lost interrupt stalls an async trial" true
    (List.exists
       (fun (tr : Faultcamp.Campaign.trial) ->
         List.mem tr.Faultcamp.Campaign.driver
           [ "ide-dma-async"; "net-async" ]
         && tr.Faultcamp.Campaign.health.Health.verdict = Health.Stalled
         && List.exists
              (fun (r : Health.reason) -> r.Health.code = "request_timeouts")
              tr.Faultcamp.Campaign.health.Health.reasons)
       unhealthy)

(* {1 Disabled-path cost: the request hook is a bare store} *)

let test_request_hook_allocation_free () =
  (* The rid attribution ride-along must not allocate: Sched brackets
     every thunk with set/reset, traced or not. *)
  Policy.set_current_request 0;
  let a0 = Gc.allocated_bytes () in
  for i = 1 to 10_000 do
    Policy.set_current_request i;
    ignore (Policy.current_request ());
    Policy.set_current_request 0
  done;
  let a1 = Gc.allocated_bytes () in
  (* allocated_bytes itself boxes its float results; allow that. *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-call allocation (%.0f bytes for 10k calls)"
       (a1 -. a0))
    true
    (a1 -. a0 < 512.0)

let () =
  Alcotest.run "lifecycle"
    [
      ( "reconstruction",
        [
          case "full arc online, stages and histograms" test_full_arc_online;
          case "rid reaches request thunks" test_rid_reaches_request_thunks;
          case "orphan until completion" test_orphan_until_completion;
          case "offline replay in seq ticks" test_of_events_offline_ticks;
        ] );
      ( "late completions",
        [ case "lost vs spurious classification" test_lost_vs_spurious ] );
      ( "health",
        [
          case "clean run is ok" test_health_clean_run_ok;
          case "timeout stalls the verdict" test_health_timeout_stalls;
          case "thresholds; degraded damage" test_health_thresholds_and_degraded;
          case "orphans stall the verdict" test_health_orphan_stalls;
          case "json shape" test_health_json_shape;
        ] );
      ( "export",
        [
          case "jsonl rid round-trip" test_jsonl_rid_round_trip;
          case "missing rid parses to 0" test_jsonl_missing_rid_is_zero;
          case "chrome flow arcs" test_chrome_flow_arcs;
        ] );
      ( "drop hook",
        [
          case "evictions fire the hook" test_drop_hook_counts_evictions;
          case "machine wires the metrics counter" test_machine_wires_drop_counter;
        ] );
      ( "campaign",
        [
          case "unhealthy trials carry named reasons"
            test_campaign_surfaces_unhealthy_trials;
        ] );
      ( "cost",
        [ case "request hook is allocation-free" test_request_hook_allocation_free ] );
    ]
