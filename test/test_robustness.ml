(* Robustness of the compiler front-end and runtime under hostile and
   unusual inputs: fuzzing (the front-end must reject, never crash),
   the post-action feature, wide transfers, recursion guards, and
   diagnostic quality. *)

module Check = Devil_check.Check
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Value = Devil_ir.Value
module Diagnostics = Devil_syntax.Diagnostics

let case name f = Alcotest.test_case name `Quick f

(* QCheck iteration counts are overridable for deeper soak runs:
   DEVIL_QCHECK_COUNT=10000 dune runtest *)
let qcount default =
  match Sys.getenv_opt "DEVIL_QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* {1 Fuzzing: no exception ever escapes the front-end} *)

let front_end_total src =
  match Check.compile src with
  | Ok _ | Error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "front-end raised %s on:@.%S"
        (Printexc.to_string e) src

let prop_fuzz_bytes =
  let gen =
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 1 127)) (int_bound 200))
  in
  QCheck.Test.make ~name:"random bytes never crash the front-end" ~count:(qcount 250)
    (QCheck.make gen) front_end_total

let prop_fuzz_token_soup =
  (* Syntactically plausible token soup is likelier to reach the deeper
     passes than raw bytes. *)
  let tokens =
    [|
      "device"; "register"; "variable"; "structure"; "private"; "if"; "else";
      "read"; "write"; "mask"; "pre"; "post"; "set"; "volatile"; "trigger";
      "except"; "for"; "block"; "serialized"; "as"; "int"; "signed"; "bool";
      "port"; "bit"; "true"; "false"; "base"; "r"; "v"; "s"; "X"; "NEUTRAL";
      "{"; "}"; "("; ")"; "["; "]"; "@"; ":"; ";"; ","; "#"; "="; "==";
      "!="; "=>"; "<="; "<=>"; ".."; "*"; "0"; "1"; "8"; "31"; "'10.*'";
      "'...'";
    |]
  in
  let gen =
    QCheck.Gen.(
      map
        (fun idxs ->
          "device d (base : bit[8] port @ {0..3}) {"
          ^ String.concat " "
              (List.map (fun i -> tokens.(i mod Array.length tokens)) idxs)
          ^ "}")
        (list_size (int_bound 40) (int_bound 1000)))
  in
  QCheck.Test.make ~name:"token soup never crashes the front-end" ~count:(qcount 250)
    (QCheck.make gen) front_end_total

let prop_fuzz_spec_corruption =
  (* Whole-character corruption of a real specification. *)
  let src = Devil_specs.Specs.busmouse_source in
  let gen = QCheck.Gen.(pair (int_bound (String.length src - 1)) (int_range 32 126)) in
  QCheck.Test.make ~name:"corrupted real specs never crash the front-end"
    ~count:(qcount 250) (QCheck.make gen) (fun (pos, code) ->
      let b = Bytes.of_string src in
      Bytes.set b pos (Char.chr code);
      front_end_total (Bytes.to_string b))

(* {1 Post-actions} *)

let compile_ok src =
  match Check.compile src with
  | Ok d -> d
  | Error diags ->
      Alcotest.fail (Format.asprintf "%a" Diagnostics.pp diags)

let test_post_actions () =
  (* A register whose access must be followed by a strobe write. *)
  let device =
    compile_ok
      "device d (base : bit[8] port @ {0..3}) {
         register strobe = write base @ 1 : bit[8];
         private variable kick = strobe, write trigger : int(8);
         register r = base @ 0, post {kick = 1} : bit[8];
         variable v = r, volatile : int(8);
         register p = base @ 2 : bit[8]; variable vp = p : int(8);
         register q = base @ 3 : bit[8]; variable vq = q : int(8);
       }"
  in
  let log = ref [] in
  let bus =
    let mem = Bus.memory () in
    {
      mem with
      Bus.read =
        (fun ~width ~addr ->
          log := `R addr :: !log;
          mem.Bus.read ~width ~addr);
      write =
        (fun ~width ~addr ~value ->
          log := `W addr :: !log;
          mem.Bus.write ~width ~addr ~value);
    }
  in
  let inst = Instance.create device ~bus ~bases:[ ("base", 0) ] in
  ignore (Instance.get inst "v");
  (match List.rev !log with
  | [ `R 0; `W 1 ] -> ()
  | _ -> Alcotest.fail "post-action must follow the read");
  log := [];
  Instance.set inst "v" (Value.Int 3);
  match List.rev !log with
  | [ `W 0; `W 1 ] -> ()
  | _ -> Alcotest.fail "post-action must follow the write"

(* {1 Recursion guard} *)

let test_unknown_entities_rejected () =
  let device =
    compile_ok
      "device d (base : bit[8] port @ {0..1}) {
         register a = base @ 0 : bit[8]; variable v = a : int(8);
         register b = base @ 1 : bit[8]; variable vb = b : int(8);
       }"
  in
  let inst =
    Instance.create device ~bus:(Bus.memory ()) ~bases:[ ("base", 0) ]
  in
  (match Instance.set_struct inst "nonexistent" [] with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "unknown structure accepted");
  (match Instance.get inst "nope" with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "unknown variable accepted");
  match Instance.read_indexed inst ~template:"T" ~args:[ 0 ] with
  | exception Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "unknown template accepted"

let test_action_depth_guard () =
  (* The language is declare-before-use, so mutual action cycles are
     unwritable — but a variable's own pre-action can reference itself
     (the elaborator registers the name before resolving its
     attributes, which the CS4236B set-action idiom needs). The
     runtime's depth guard must turn the loop into an error. *)
  let device =
    compile_ok
      "device d (base : bit[8] port @ {0..1}) {
         register ra = base @ 0 : bit[8];
         private variable a = ra, pre {a = 0} : int(8);
         register rb = base @ 1, pre {a = 1} : bit[8];
         variable c = rb : int(8);
       }"
  in
  let inst =
    Instance.create device ~bus:(Bus.memory ()) ~bases:[ ("base", 0) ]
  in
  match Instance.set inst "c" (Value.Int 1) with
  | exception Instance.Device_error msg ->
      Alcotest.(check bool) "mentions recursion" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "cyclic pre-actions not detected"

(* {1 Wide transfers} *)

let test_wide_transfers () =
  let device =
    compile_ok
      "device d (base : bit[16] port @ {0..3}) {
         register r = base @ 0 : bit[16];
         variable v = r, trigger, volatile, block : int(16);
         register p = base @ 1 : bit[16]; variable vp = p : int(16);
         register s = base @ 2 : bit[16]; variable vs = s : int(16);
         register q = base @ 3 : bit[16]; variable vq = q : int(16);
       }"
  in
  let widths = ref [] in
  let mem = Bus.memory () in
  let bus =
    {
      mem with
      Bus.read =
        (fun ~width ~addr ->
          widths := width :: !widths;
          mem.Bus.read ~width ~addr);
      write =
        (fun ~width ~addr ~value ->
          widths := width :: !widths;
          mem.Bus.write ~width ~addr ~value);
    }
  in
  let inst = Instance.create device ~bus ~bases:[ ("base", 0) ] in
  Instance.write_wide inst "v" ~scale:2 0xdeadbeef;
  ignore (Instance.read_wide inst "v" ~scale:2);
  Alcotest.(check (list int)) "32-bit accesses" [ 32; 32 ] (List.rev !widths);
  let data = Instance.read_block_wide inst "v" ~scale:2 ~count:3 in
  Alcotest.(check int) "block length" 3 (Array.length data)

(* {1 Diagnostics carry positions} *)

let test_diagnostic_positions () =
  let src =
    "device d (base : bit[8] port @ {0..1}) {\n\
     register a = base @ 0 : bit[8];\n\
     variable v = a[9] : bool;\n\
     register b = base @ 1 : bit[8]; variable vb = b : int(8);\n\
     }"
  in
  match Check.compile ~file:"probe.dil" src with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error diags ->
      let item = List.hd (Diagnostics.items diags) in
      let rendered = Format.asprintf "%a" Diagnostics.pp_item item in
      Alcotest.(check bool) "mentions the file" true
        (String.length rendered > 0
        && String.sub rendered 0 5 = "probe")

(* {1 Unused configuration parameter warning} *)

let test_unused_config_warning () =
  let src =
    "device d (base : bit[8] port @ {0..0}, ghost : bool) {\n\
     register a = base @ 0 : bit[8]; variable v = a : int(8);\n\
     }"
  in
  match Devil_ir.Resolve.elaborate_string ~config:[ ("ghost", Value.Bool true) ] src with
  | Error _ -> Alcotest.fail "spec rejected"
  | Ok device ->
      let diags = Check.check device in
      let warned =
        List.exists
          (fun (i : Diagnostics.item) ->
            i.severity = Diagnostics.Warning
            && String.length i.message > 0)
          (Diagnostics.items diags)
      in
      Alcotest.(check bool) "warning emitted" true warned

(* {1 Fault wrapper transparency and poll termination} *)

(* Random bus traffic: single and block transfers in both directions
   over a small address window. *)
type traffic =
  | T_read of int
  | T_write of int * int
  | T_read_block of int * int
  | T_write_block of int * int list

let traffic_gen =
  QCheck.Gen.(
    let addr = int_bound 31 in
    oneof
      [
        map (fun a -> T_read a) addr;
        map2 (fun a v -> T_write (a, v)) addr (int_bound 0xffff);
        map2 (fun a n -> T_read_block (a, n)) addr (int_range 1 8);
        map2
          (fun a vs -> T_write_block (a, vs))
          addr
          (list_size (int_range 1 8) (int_bound 0xffff));
      ])

let apply_traffic bus ops =
  (* Every value read comes back in the observation list, so two buses
     agree iff the observations agree. *)
  List.concat_map
    (fun op ->
      match op with
      | T_read a -> [ bus.Bus.read ~width:8 ~addr:a ]
      | T_write (a, v) ->
          bus.Bus.write ~width:8 ~addr:a ~value:v;
          []
      | T_read_block (a, n) ->
          let into = Array.make n 0 in
          bus.Bus.read_block ~width:8 ~addr:a ~into;
          Array.to_list into
      | T_write_block (a, vs) ->
          bus.Bus.write_block ~width:8 ~addr:a ~from:(Array.of_list vs);
          [])
    ops

let prop_zero_fault_wrapper_transparent =
  let inert_plans =
    (* Plans that can never mutate anything: identity masks, zero
       probabilities. The wrapper must stay invisible through them. *)
    [
      Devil_runtime.Fault.plan ~label:"inert-stuck" ~first:0 ~last:31
        (Devil_runtime.Fault.Stuck_bits { and_mask = -1; or_mask = 0 });
      Devil_runtime.Fault.plan ~label:"inert-flip" ~first:0 ~last:31
        (Devil_runtime.Fault.Flip_bits { mask = 0xff; probability = 0.0 });
      Devil_runtime.Fault.plan ~label:"inert-transient" ~first:0 ~last:31
        (Devil_runtime.Fault.Transient { probability = 0.0 });
    ]
  in
  QCheck.Test.make
    ~name:"zero-fault wrapper is observationally identical to the raw bus"
    ~count:(qcount 200)
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) traffic_gen))
    (fun ops ->
      let raw = apply_traffic (Bus.memory ()) ops in
      let check plans =
        let inj = Devil_runtime.Fault.wrap ~seed:42 ~plans (Bus.memory ()) in
        let wrapped = apply_traffic (Devil_runtime.Fault.bus inj) ops in
        wrapped = raw && Devil_runtime.Fault.injection_count inj = 0
      in
      check [] && check inert_plans)

let prop_poll_until_terminates =
  QCheck.Test.make
    ~name:"poll_until never evaluates its condition beyond the deadline"
    ~count:(qcount 200)
    (QCheck.make QCheck.Gen.(pair (int_range 1 300) (int_bound 3)))
    (fun (deadline, step) ->
      let module Policy = Devil_runtime.Policy in
      let evals = ref 0 in
      let backoff i = step * i in
      (match
         Policy.poll_until ~deadline ~backoff ~label:"never" (fun () ->
             incr evals;
             false)
       with
      | () -> QCheck.Test.fail_report "poll returned without the condition"
      | exception Policy.Driver_error (Policy.Timeout _) -> ());
      !evals >= 1 && !evals <= deadline)

let prop_poll_until_stops_at_condition =
  QCheck.Test.make
    ~name:"poll_until evaluates exactly once per former loop iteration"
    ~count:(qcount 200)
    (QCheck.make QCheck.Gen.(int_range 1 200))
    (fun k ->
      let module Policy = Devil_runtime.Policy in
      let evals = ref 0 in
      Policy.poll_until ~deadline:200 ~label:"kth" (fun () ->
          incr evals;
          !evals >= k);
      !evals = k)

let () =
  Alcotest.run "robustness"
    [
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fuzz_bytes; prop_fuzz_token_soup; prop_fuzz_spec_corruption ]
      );
      ( "faults",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_zero_fault_wrapper_transparent;
            prop_poll_until_terminates;
            prop_poll_until_stops_at_condition;
          ] );
      ( "features",
        [
          case "post-actions" test_post_actions;
          case "wide transfers" test_wide_transfers;
        ] );
      ( "guards",
        [
          case "unknown entities" test_unknown_entities_rejected;
          case "action recursion depth" test_action_depth_guard;
        ] );
      ( "diagnostics",
        [
          case "positions in messages" test_diagnostic_positions;
          case "unused config parameter" test_unused_config_warning;
        ] );
    ]
